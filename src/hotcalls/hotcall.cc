/**
 * @file
 * HotCallService implementation.
 */

#include "hotcalls/hotcall.hh"

#include "fault/fault.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace hc::hotcalls {

namespace {

/** Requester-side fixed glue (argument packing around the channel). */
constexpr Cycles kRequesterFixed = 95;
/** Responder-side fixed dispatch (call-table lookup, jump). */
constexpr Cycles kResponderFixed = 85;

/** @return @p bytes rounded up to whole cache lines (0 stays 0). */
std::uint64_t
roundUpToLines(std::uint64_t bytes)
{
    return (bytes + kCacheLineSize - 1) / kCacheLineSize *
           kCacheLineSize;
}

} // anonymous namespace

bool
resolveFastPath(int config_value)
{
    if (config_value >= 0)
        return config_value != 0;
    return envFlagOr("HC_FASTPATH", true);
}

HotCallService::HotCallService(sdk::EnclaveRuntime &runtime, Kind kind,
                               CoreId responder_core,
                               HotCallConfig config)
    : runtime_(runtime), machine_(runtime.platform().machine()),
      kind_(kind), responderCore_(responder_core), config_(config),
      sleepMutex_(machine_), sleepCond_(machine_)
{
    // One 64-byte line in untrusted memory holds the whole protocol
    // state (spin-lock word, busy flag, call_ID, *data), so a single
    // coherence transfer moves it between requester and responder.
    channelLine_ =
        machine_.space().allocUntrusted(kCacheLineSize, kCacheLineSize);
    if (auto *ck = machine_.check()) {
        // The channel line is the protocol's atomic: its accesses
        // order, not race. The shadow machine validates transitions.
        ck->registerSyncWord(channelLine_);
        protocol_ = std::make_unique<check::HotCallProtocol>(
            *ck, kind_ == Kind::HotEcall ? "hot-ecall" : "hot-ocall");
    }
    if (auto *sentinel = machine_.guard()) {
        guard_ = &sentinel->adopt(
            kind_ == Kind::HotEcall ? "hot-ecall" : "hot-ocall",
            config_.timeout);
    }

    // FastPath channel staging. Allocated strictly after the legacy
    // channel line so a disabled fast path leaves the address layout
    // (and therefore every cache interaction) bit-identical to the
    // pre-FastPath channel.
    fastOn_ = resolveFastPath(config_.fastPath);
    if (fastOn_) {
        const bool is_ocall = kind_ == Kind::HotOcall;
        if (is_ocall && config_.inlinePayloadBytes > 0) {
            inlineArena_ = std::make_unique<mem::StagingArena>(
                machine_, mem::Domain::Untrusted,
                roundUpToLines(config_.inlinePayloadBytes));
        }
        if (config_.arenaBytes > 0) {
            // HotEcall staging must live in enclave memory: the copy
            // out of untrusted caller buffers is the security step.
            arena_ = std::make_unique<mem::StagingArena>(
                machine_,
                is_ocall ? mem::Domain::Untrusted : mem::Domain::Epc,
                config_.arenaBytes);
        }
        staging_.inlineArena = inlineArena_.get();
        staging_.spill = arena_.get();
        if (auto *ck = machine_.check()) {
            // Arena lines order payload handoff, they do not race.
            for (auto *arena : {inlineArena_.get(), arena_.get()}) {
                if (!arena)
                    continue;
                for (std::uint64_t i = 0; i < arena->lineCount(); ++i)
                    ck->registerSyncWord(arena->base() +
                                         i * kCacheLineSize);
            }
        }
    }
}

HotCallService::~HotCallService()
{
    // stop() joins the responder; without it a still-polling
    // responder would touch the channel line after the free below.
    stop();
    // Once Engine::run() has returned no fiber can ever execute
    // again, so even a stranded (not Done) responder cannot touch the
    // line anymore: free it. Inside a still-running simulation a
    // responder that could not be joined (e.g. blocked inside a
    // kernel ocall that never returns) may still hold the line, so it
    // is deliberately leaked in that case.
    const bool outside_sim = machine_.engine().currentThread() == nullptr;
    bool all_done =
        !responder_ || responder_->state() == sim::ThreadState::Done;
    for (sim::Thread *old : retired_)
        all_done &= old->state() == sim::ThreadState::Done;
    if (outside_sim || all_done) {
        machine_.space().free(channelLine_);
    } else if (auto *ck = machine_.check()) {
        const char *why =
            "hotcall channel line held by an unjoinable responder";
        ck->registerDeliberateLeak(channelLine_, why);
        // The arenas share the channel's fate: an unjoinable
        // responder may still be serving out of them.
        for (auto *arena : {inlineArena_.get(), arena_.get()}) {
            if (!arena || !arena->base())
                continue;
            ck->registerDeliberateLeak(arena->base(), why);
            arena->leak();
        }
    }
}

void
HotCallService::joinOne(sim::Thread *responder)
{
    // Only possible from inside a simulated thread while the engine
    // is still running; outside (e.g. teardown after Engine::run()
    // returned) the responder cannot execute anymore, so there is
    // nothing to wait for. The wait is bounded: a responder stuck in
    // a blocking ocall handler (no more traffic will ever arrive)
    // must not livelock teardown.
    constexpr Cycles kJoinGrace = 2'000'000;
    constexpr Cycles kJoinStep = 500;
    auto *engine = sim::Engine::current();
    if (!engine || !engine->currentThread() || !responder)
        return;
    for (Cycles waited = 0;
         responder->state() != sim::ThreadState::Done &&
         !engine->stopRequested() && waited < kJoinGrace;
         waited += kJoinStep) {
        engine->advance(kJoinStep);
    }
    if (responder->state() == sim::ThreadState::Done) {
        if (auto *ck = machine_.check())
            ck->joinEdge(responder);
    }
}

void
HotCallService::joinResponder()
{
    joinOne(responder_);
    for (sim::Thread *old : retired_)
        joinOne(old);
}

void
HotCallService::touchChannel(bool write)
{
    machine_.memory().accessWord(channelLine_, write);
}

void
HotCallService::touchArenaLine(bool write)
{
    machine_.memory().accessWord(arena_->base(), write);
}

void
HotCallService::start()
{
    hc_assert(!responder_);
    const char *name = kind_ == Kind::HotEcall ? "hot-ecall-responder"
                                               : "hot-ocall-responder";
    const std::uint64_t epoch = responderEpoch_;
    responder_ = machine_.engine().spawn(
        name, responderCore_, [this, epoch] { responderLoop(epoch); });
}

void
HotCallService::maybeRespawn(bool entered_quarantine)
{
    if (!entered_quarantine || !guard_)
        return;
    const Cycles now = machine_.now();
    // Respawn only when the responder is provably wedged (no
    // heartbeat within the liveness window): a quarantine caused by
    // sheer overload is not cured by killing the worker.
    if (!guard_->config().respawn || !guard_->responderLate(now))
        return;
    if (!guard_->respawnAllowed())
        return;
    // Retire the wedged fiber — it exits at its next retirement
    // check and is joined at stop() — and put a fresh responder on
    // the same core. The quarantine probe confirms the recovery.
    retired_.push_back(responder_);
    ++responderEpoch_;
    const std::uint64_t epoch = responderEpoch_;
    const std::string name =
        std::string(kind_ == Kind::HotEcall ? "hot-ecall-responder-r"
                                            : "hot-ocall-responder-r") +
        std::to_string(responderEpoch_);
    responder_ = machine_.engine().spawn(
        name, responderCore_, [this, epoch] { responderLoop(epoch); });
}

void
HotCallService::stop()
{
    if (stopped_)
        return;
    stopRequested_ = true;
    auto *engine = sim::Engine::current();
    if (!engine || !engine->currentThread()) {
        // Outside the simulation nothing can still run; there is no
        // join to wait for, so stop is complete.
        if (guard_)
            guard_->flush(machine_.now());
        stopped_ = true;
        return;
    }
    // The sleeping_ flag is handed over under sleepMutex_: the
    // responder only commits to wait() while holding the mutex, so
    // checking the flag inside it cannot race with a responder that
    // is about to park (which would miss this signal).
    sleepMutex_.lock();
    if (sleeping_)
        sleepCond_.signal();
    sleepMutex_.unlock();
    joinResponder();
    if (guard_) {
        // Drain a still-poisoned channel: every responder that could
        // have discarded the abandoned request has exited, so the
        // supervisor performs the teardown discard itself.
        if (abandoned_) {
            go_ = false;
            abandoned_ = false;
            touchChannel(true);
            if (protocol_)
                protocol_->onDiscard();
            guard_->noteDiscard();
        }
        guard_->flush(machine_.now());
        stats_.degradedCycles = guard_->degradedCycles(machine_.now());
    }
    stopped_ = true;
}

std::uint64_t
HotCallService::call(const std::string &name, const edl::Args &args)
{
    const int id = kind_ == Kind::HotOcall ? runtime_.ocallId(name)
                                           : runtime_.ecallId(name);
    return call(id, args);
}

std::uint64_t
HotCallService::call(int id, const edl::Args &args)
{
    hc_assert(responder_);
    auto &engine = machine_.engine();
    auto &rng = engine.rng();

    const bool is_ocall = kind_ == Kind::HotOcall;
    if (is_ocall &&
        !runtime_.platform().inEnclave(machine_.currentCore())) {
        throw sgx::SgxFault("HotOcall issued outside enclave mode");
    }

    // Sentinel routing: a quarantined channel sheds straight to the
    // SDK with zero spin waste (counted as a fallback that spent no
    // attempts), except for one scheduled probe per backoff interval.
    bool probing = false;
    if (guard_) {
        const auto route = guard_->route(machine_.now());
        if (route == guard::ChannelGuard::Route::Shed) {
            ++stats_.fallbacks;
            ++stats_.degradedCalls;
            guard_->onShed(machine_.now());
            stats_.degradedCycles =
                guard_->degradedCycles(machine_.now());
            return is_ocall ? runtime_.ocall(id, args)
                            : runtime_.ecall(id, args);
        }
        probing = route == guard::ChannelGuard::Route::Probe;
    }

    engine.advance(kRequesterFixed);
    const Cycles call_start = machine_.now();

    auto *injector = machine_.fault();
    // The spin budget: the configured fixed value on the healthy path
    // (bit-identical to the pre-Sentinel channel — the budget only
    // matters at exhaustion, which implies a fallback), widened from
    // the latency estimate once the channel looks distressed.
    const int budget = guard_ ? guard_->attemptBudget(call_start)
                              : config_.timeout.timeoutTries;
    for (int attempt = 0; attempt < budget; ++attempt) {
        if (injector &&
            injector->fire(fault::Site::RequesterAttempt)) {
            // Forced expiry: behave exactly as if the channel were
            // busy for this attempt.
            ++stats_.timeoutAttempts;
            engine.advance(sdk::kPauseCycles +
                           injector->delay(fault::Site::RequesterAttempt));
            continue;
        }
        // Take the spin-lock (one RFO on the channel line).
        touchChannel(true);
        if (lockWord_) {
            ++stats_.timeoutAttempts;
            engine.advance(sdk::kPauseCycles +
                           rng.nextBelow(config_.pollJitter + 1));
            continue;
        }
        lockWord_ = true;
        if (protocol_)
            protocol_->onLock();

        // Is the responder free? Under FastPath the channel staging
        // must also be free: slotBusy_ stays set until the previous
        // requester has copied its results back out of the arenas
        // (the busy flag alone drops when the responder finishes,
        // which is too early to recycle the staging).
        touchChannel(false);
        if (go_ || slotBusy_) {
            ++stats_.timeoutAttempts;
            lockWord_ = false;
            if (protocol_)
                protocol_->onUnlock();
            touchChannel(true);
            engine.advance(sdk::kPauseCycles +
                           rng.nextBelow(config_.pollJitter + 1));
            continue;
        }

        // The responder is ours. Marshal the data (a HotOcall
        // requester runs the same edger8r-generated trusted wrapper
        // the SDK would, Section 4.2/5), publish *data and call_ID,
        // then signal "go" and release the lock.
        edl::StagedCall staged;
        EcallRequest ecall_req;
        bool fast_call = false;
        if (is_ocall) {
            const auto &fn = runtime_.edlFile()
                                 .untrusted[static_cast<std::size_t>(id)];
            // Scalar-only functions stage nothing: the legacy path
            // below is already copy-free and charge-free for them, so
            // the fast plane only engages when payload moves.
            if (fastOn_)
                fast_call = runtime_.marshaller().plan(fn).anyCopy;
            if (fast_call) {
                slotBusy_ = true; // claim the staging (under the lock)
                runtime_.marshaller().stageOcallFast(
                    runtime_.marshaller().plan(fn), args, staging_,
                    scratch_);
                usedArena_ = staging_.usedSpill;
                if (usedArena_)
                    touchArenaLine(true); // hand the payload lines over
                ++stats_.fastCalls;
                if (staging_.usedInline)
                    ++stats_.inlineStaged;
                if (staging_.usedSpill)
                    ++stats_.arenaStaged;
                if (staging_.usedHeap)
                    ++stats_.heapStaged;
                ocallRequest_ = &scratch_;
            } else {
                staged = runtime_.marshaller().stageOcall(fn, args);
                ocallRequest_ = &staged;
            }
        } else {
            ecall_req.args = &args;
            ecallRequest_ = &ecall_req;
        }
        callId_ = id;
        touchChannel(true); // publish *data and call_ID
        go_ = true;
        requestServed_ = false;
        if (protocol_)
            protocol_->onPublish();
        touchChannel(true); // mark the responder busy ("go")

        if (sleeping_) {
            // Responder parked: wake it before waiting (Section 4.2,
            // "Conserving resources at idle times"). The flag handoff
            // happens under sleepMutex_: the responder re-checks the
            // busy flag inside the mutex before parking, so either we
            // see sleeping_ here and signal, or the responder sees
            // our published request and never parks.
            sleepMutex_.lock();
            if (sleeping_) {
                ++stats_.wakeups;
                sleepCond_.signal();
            }
            sleepMutex_.unlock();
        }

        lockWord_ = false;
        if (protocol_)
            protocol_->onUnlock();
        touchChannel(true); // release the lock
        engine.advance(sdk::kPauseCycles); // PAUSE after release

        // Wait for completion: the responder clears the busy flag
        // once it has executed the call and filled the response. Once
        // the engine is unwinding the responder will never clear it,
        // and when this requester is the only runnable fiber left the
        // spin would keep the host alive forever — bail out instead,
        // like the bounded join loops in stop().
        const Cycles wait_start = machine_.now();
        for (;;) {
            touchChannel(false);
            if (!go_)
                break;
            if (injector)
                injector->pollStop(); // time-based abort backstop
            if (engine.stopRequested()) {
                ++stats_.aborts;
                if (fast_call) {
                    // Release the staging claim: the responder is
                    // stranded, nothing will harvest on our behalf.
                    usedArena_ = false;
                    slotBusy_ = false;
                }
                return 0;
            }
            if (guard_ && !requestServed_ &&
                machine_.now() - wait_start >
                    guard_->unservedDeadline() &&
                guard_->responderLate(machine_.now())) {
                // Abandon: no live responder ever committed to the
                // published request, and none has shown a heartbeat
                // within the liveness window. Poison the channel (go_
                // stays up so no requester can claim it; the next
                // responder to see it discards without serving — the
                // served/abandoned handoff is host-atomic, so the
                // request is either discarded or served, never both)
                // and reissue the call on the SDK path.
                abandoned_ = true;
                touchChannel(true);
                if (protocol_)
                    protocol_->onAbandon();
                guard_->noteAbandon();
                if (fast_call) {
                    // Release the staging claim; a discarding
                    // responder never reads the staging.
                    usedArena_ = false;
                    slotBusy_ = false;
                }
                ++stats_.fallbacks;
                maybeRespawn(
                    guard_->onFallback(machine_.now(), probing));
                stats_.degradedCycles =
                    guard_->degradedCycles(machine_.now());
                return is_ocall ? runtime_.ocall(id, args)
                                : runtime_.ecall(id, args);
            }
            engine.advance(sdk::kPauseCycles +
                           rng.nextBelow(config_.pollJitter + 1));
        }
        ++stats_.calls;
        if (guard_) {
            guard_->onSuccess(machine_.now(),
                              machine_.now() - call_start, attempt,
                              probing);
            stats_.degradedCycles =
                guard_->degradedCycles(machine_.now());
        }

        // Note: the shared request-pointer fields are NOT cleared
        // here. Once the busy flag dropped, another requester may
        // already have taken the lock and published its own request;
        // scribbling the channel without holding the lock would race
        // with it. (slotBusy_ is ours alone to clear: requesters
        // only set it after observing it clear under the lock.)
        if (is_ocall) {
            if (fast_call) {
                // Copy results out of the recycled staging, then
                // release the staging claim.
                if (usedArena_)
                    touchArenaLine(false);
                runtime_.marshaller().finishOcallFast(scratch_);
                const std::uint64_t rv = scratch_.retval();
                usedArena_ = false;
                slotBusy_ = false;
                touchChannel(true);
                return rv;
            }
            // Back "inside": copy out-buffers into the enclave.
            runtime_.marshaller().finishOcall(staged);
            return staged.retval();
        }
        return ecall_req.retval;
    }

    // Timeout expired: fall back to the conventional SDK call
    // (Section 4.2, "Preventing starvation").
    ++stats_.fallbacks;
    if (guard_) {
        maybeRespawn(guard_->onFallback(machine_.now(), probing));
        stats_.degradedCycles = guard_->degradedCycles(machine_.now());
    }
    return is_ocall ? runtime_.ocall(id, args)
                    : runtime_.ecall(id, args);
}

void
HotCallService::serveRequest()
{
    const Cycles start = machine_.now();
    auto &engine = machine_.engine();
    engine.advance(kResponderFixed);

    if (kind_ == Kind::HotOcall) {
        hc_assert(ocallRequest_);
        const bool arena_handoff = fastOn_ && usedArena_;
        if (arena_handoff)
            touchArenaLine(false); // pull the spilled payload lines
        runtime_.dispatchOcallDirect(callId_, *ocallRequest_);
        if (arena_handoff)
            touchArenaLine(true); // results written back to the arena
    } else {
        // HotEcall: the trusted responder runs the original
        // edger8r-style wrapper — staging (copy-in), the trusted
        // function, and copy-out all execute inside the enclave.
        hc_assert(ecallRequest_);
        const auto &fn =
            runtime_.edlFile().trusted[static_cast<std::size_t>(callId_)];
        auto &marshaller = runtime_.marshaller();
        if (fastOn_ && marshaller.plan(fn).anyCopy) {
            // FastPath: stage into the recycled EPC arena. The
            // staging is responder-side and serial, so recycling here
            // (while no other call can be in it) is safe.
            marshaller.stageEcallFast(marshaller.plan(fn),
                                      *ecallRequest_->args, staging_,
                                      scratch_);
            ++stats_.fastCalls;
            if (staging_.usedSpill)
                ++stats_.arenaStaged;
            if (staging_.usedHeap)
                ++stats_.heapStaged;
            runtime_.dispatchEcallDirect(callId_, scratch_);
            marshaller.finishEcallFast(scratch_);
            ecallRequest_->retval = scratch_.retval();
        } else {
            auto staged =
                marshaller.stageEcall(fn, *ecallRequest_->args);
            runtime_.dispatchEcallDirect(callId_, staged);
            marshaller.finishEcall(staged);
            ecallRequest_->retval = staged.retval();
        }
    }

    stats_.responderBusyCycles += machine_.now() - start;
}

void
HotCallService::responderLoop(std::uint64_t epoch)
{
    auto &engine = machine_.engine();
    auto &rng = engine.rng();
    auto &platform = runtime_.platform();

    // A HotEcall responder parks inside the enclave with one
    // conventional ecall and keeps polling from enclave mode.
    sgx::Tcs *tcs = nullptr;
    if (kind_ == Kind::HotEcall) {
        // A respawned responder can be scheduled before its retired
        // predecessor has left the enclave on this core (it eexits as
        // soon as it observes its retirement): wait for the core to
        // clear — the simulator allows one in-enclave fiber per core.
        while (platform.inEnclave(responderCore_) &&
               !stopRequested_ && !engine.stopRequested() &&
               epoch == responderEpoch_) {
            engine.advance(sdk::kPauseCycles);
            engine.yield();
        }
        if (stopRequested_ || engine.stopRequested() ||
            epoch != responderEpoch_)
            return;
        platform.chargeStage(platform.params().sdkEcallSoftware,
                             runtime_.enclave().untrustedCtxLines(),
                             false);
        // Under heavy fallback traffic every TCS may momentarily be
        // taken by conventional ecalls; wait for one politely.
        while (!(tcs = runtime_.enclave().acquireTcs())) {
            engine.advance(sdk::kPauseCycles);
            engine.yield();
        }
        platform.eenter(runtime_.enclave(), *tcs);
    }

    auto *injector = machine_.fault();
    std::uint64_t idle_polls = 0;
    while (!stopRequested_ && epoch == responderEpoch_) {
        ++stats_.responderPolls;
        if (guard_)
            guard_->heartbeat(machine_.now());

        if (injector) {
            if (injector->fire(fault::Site::ResponderNeverWake)) {
                // Park for good: requesters see a saturated channel
                // until the channel (or the engine) stops — or, under
                // Sentinel, until a respawn retires this fiber.
                // Stepped so the stopAtCycle backstop can still fire.
                while (!stopRequested_ && !engine.stopRequested() &&
                       epoch == responderEpoch_) {
                    injector->pollStop();
                    engine.advance(sdk::kPauseCycles * 16);
                    engine.yield();
                }
                continue;
            }
            if (injector->fire(fault::Site::ResponderOversleep)) {
                engine.advance(
                    injector->delay(fault::Site::ResponderOversleep));
            }
        }

        // Try the lock; on failure just PAUSE and retry.
        touchChannel(true);
        if (!lockWord_) {
            lockWord_ = true;
            if (protocol_)
                protocol_->onLock();
            touchChannel(false); // check the busy/"go" flag
            if (go_) {
                idle_polls = 0;
                touchChannel(false); // read call_ID and *data
                if (guard_ && abandoned_) {
                    // The publisher gave up on this request and
                    // reissued it on the SDK path; its staging is
                    // gone. Discard: drop the poison marker and the
                    // busy flag together without dereferencing the
                    // stale request pointers.
                    go_ = false;
                    abandoned_ = false;
                    if (protocol_)
                        protocol_->onDiscard();
                    guard_->noteDiscard();
                    lockWord_ = false;
                    if (protocol_)
                        protocol_->onUnlock();
                    touchChannel(true); // release; channel clean again
                } else {
                    // Commit host-atomically with the abandoned_
                    // check above (no advance in between): the
                    // publisher only abandons while !requestServed_,
                    // so a request is either discarded or served,
                    // never both.
                    requestServed_ = true;
                    if (protocol_)
                        protocol_->onServe();
                    lockWord_ = false;
                    if (protocol_)
                        protocol_->onUnlock();
                    touchChannel(true); // release before executing
                    serveRequest();
                    go_ = false;
                    if (protocol_)
                        protocol_->onComplete();
                    touchChannel(true); // busy cleared (completion)
                    if (guard_)
                        guard_->heartbeat(machine_.now());
                    if (rng.chance(config_.hiccupChance)) {
                        engine.advance(static_cast<Cycles>(
                            rng.nextExponential(static_cast<double>(
                                config_.hiccupMean))));
                    }
                }
            } else {
                ++idle_polls;
                lockWord_ = false;
                if (protocol_)
                    protocol_->onUnlock();
                touchChannel(true);
            }
        }
        engine.advance(sdk::kPauseCycles +
                       rng.nextBelow(config_.pollJitter + 1));

        if (config_.responderSleep &&
            idle_polls > config_.idlePollsBeforeSleep &&
            !stopRequested_) {
            // Conserve the core: park on the condition variable until
            // a requester (or stop()) signals. Commit to parking only
            // under sleepMutex_, re-checking the busy flag and the
            // stop request inside it: a requester publishes first and
            // checks sleeping_ afterwards (under the same mutex), so
            // a request that raced our decision to park is seen here
            // and served instead of slept through.
            sleepMutex_.lock();
            touchChannel(false);
            if (!go_ && !stopRequested_) {
                ++stats_.responderSleeps;
                sleeping_ = true;
                touchChannel(true);
                sleepCond_.wait(sleepMutex_);
                sleeping_ = false;
                touchChannel(true);
            }
            sleepMutex_.unlock();
            idle_polls = 0;
        }
    }

    if (kind_ == Kind::HotEcall) {
        platform.eexit();
        runtime_.enclave().releaseTcs(tcs);
    }
}

} // namespace hc::hotcalls
