/**
 * @file
 * SimCheck implementation.
 */

#include "check/check.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace hc::check {

namespace {

const std::string kHostName = "<host>";

std::string
hex(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // anonymous namespace

SimCheck::SimCheck(sim::Engine &engine, CheckConfig config)
    : engine_(engine), config_(config)
{
}

// ----------------------------------------------------------------------
// Thread bookkeeping and clock algebra.
// ----------------------------------------------------------------------

SimCheck::ThreadInfo &
SimCheck::info(sim::Thread *thread)
{
    const std::size_t tid = thread->id();
    if (threads_.size() <= tid)
        threads_.resize(tid + 1);
    ThreadInfo &ti = threads_[tid];
    if (!ti.known) {
        ti.known = true;
        ti.name = thread->name();
        if (ti.clock.size() <= tid)
            ti.clock.resize(tid + 1, 0);
        // Epochs start at 1 so epoch 0 means "never synchronized".
        ti.clock[tid] = std::max<std::uint64_t>(ti.clock[tid], 1);
    }
    return ti;
}

void
SimCheck::join(Clock &into, const Clock &from)
{
    if (into.size() < from.size())
        into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

bool
SimCheck::ordered(const Access &access, const Clock &clock)
{
    const std::uint64_t seen =
        access.tid < clock.size() ? clock[access.tid] : 0;
    return access.epoch <= seen;
}

const std::string &
SimCheck::nameOf(std::uint64_t tid) const
{
    if (tid < threads_.size() && threads_[tid].known)
        return threads_[tid].name;
    return kHostName;
}

std::string
SimCheck::currentThreadName() const
{
    sim::Thread *t = engine_.currentThread();
    return t ? t->name() : kHostName;
}

// ----------------------------------------------------------------------
// Happens-before sources.
// ----------------------------------------------------------------------

void
SimCheck::onSpawn(sim::Thread *parent, sim::Thread *child)
{
    ThreadInfo &ci = info(child);
    if (parent) {
        ThreadInfo &pi = info(parent);
        join(ci.clock, pi.clock);
        pi.clock[parent->id()]++;
        // The join above may have advanced the child's own entry past
        // its initial epoch; keep its identity component dominant.
        ci.clock[child->id()]++;
    }
}

void
SimCheck::onWake(sim::Thread *waker, sim::Thread *woken)
{
    ThreadInfo &wi = info(woken);
    if (waker) {
        ThreadInfo &ki = info(waker);
        join(wi.clock, ki.clock);
        ki.clock[waker->id()]++;
    }
}

void
SimCheck::onThreadExit(sim::Thread *thread)
{
    // Keep the final clock so a later polling join can acquire it.
    info(thread);
}

void
SimCheck::joinEdge(sim::Thread *joined)
{
    sim::Thread *self = engine_.currentThread();
    if (!self || !joined || self == joined)
        return;
    join(info(self).clock, info(joined).clock);
}

void
SimCheck::acquireEdge(const void *obj)
{
    sim::Thread *self = engine_.currentThread();
    if (!self)
        return;
    auto it = objectClocks_.find(obj);
    if (it != objectClocks_.end())
        join(info(self).clock, it->second);
}

void
SimCheck::releaseEdge(const void *obj)
{
    sim::Thread *self = engine_.currentThread();
    if (!self)
        return;
    ThreadInfo &ti = info(self);
    join(objectClocks_[obj], ti.clock);
    ti.clock[self->id()]++;
}

// ----------------------------------------------------------------------
// Race detector.
// ----------------------------------------------------------------------

void
SimCheck::registerSyncWord(Addr addr)
{
    syncWords_.insert(addr);
}

void
SimCheck::markExempt(Addr addr)
{
    exempt_.insert(addr);
}

void
SimCheck::onWordAccess(Addr addr, bool write)
{
    sim::Thread *self = engine_.currentThread();
    if (!self)
        return; // host-side setup: single-threaded by construction

    if (syncWords_.count(addr)) {
        // Atomic semantics: readers acquire the word's release clock,
        // writers also publish theirs (the protocols read-modify-write
        // these words, so a write is acquire + release).
        ThreadInfo &ti = info(self);
        Clock &wc = syncClocks_[addr];
        join(ti.clock, wc);
        if (write) {
            join(wc, ti.clock);
            ti.clock[self->id()]++;
        }
        return;
    }
    if (exempt_.count(addr))
        return;

    ThreadInfo &ti = info(self);
    const std::uint64_t tid = self->id();
    WordState &word = words_[addr];

    if (word.write.valid && word.write.tid != tid &&
        !ordered(word.write, ti.clock)) {
        reportRace(write ? "write" : "read", "write", addr, word.write);
    }
    if (write) {
        for (const Access &read : word.reads) {
            if (read.tid != tid && !ordered(read, ti.clock))
                reportRace("write", "read", addr, read);
        }
        word.write = {tid, ti.clock[tid], engine_.now(), true};
        word.reads.clear();
    } else {
        for (Access &read : word.reads) {
            if (read.tid == tid) {
                read.epoch = ti.clock[tid];
                read.at = engine_.now();
                return;
            }
        }
        word.reads.push_back({tid, ti.clock[tid], engine_.now(), true});
    }
}

void
SimCheck::onSpanAccess(Addr addr, std::uint64_t len, bool write)
{
    if (len == 0)
        return;
    sim::Thread *self = engine_.currentThread();
    if (!self)
        return; // host-side setup: single-threaded by construction

    // Bulk payload bytes are deliberately not race-tracked per word
    // (stream-priced data; per-word shadowing of megabyte transfers
    // would also be prohibitive). Registered sync words keep their
    // atomic semantics even when a range op sweeps over them, so a
    // span through a channel's lines still orders like the word ops
    // in onWordAccess() would.
    const Addr end = addr + len; // == 0 when the span ends at the top
    for (auto it = syncWords_.lower_bound(addr);
         it != syncWords_.end() && (end == 0 || *it < end); ++it) {
        ThreadInfo &ti = info(self);
        Clock &wc = syncClocks_[*it];
        join(ti.clock, wc);
        if (write) {
            join(wc, ti.clock);
            ti.clock[self->id()]++;
        }
    }
}

void
SimCheck::reportRace(const char *current_op, const char *prior_op,
                     Addr addr, const Access &prior)
{
    sim::Thread *self = engine_.currentThread();
    std::string msg = "data race on word " + hex(addr) + ": " +
                      current_op + " by thread '" +
                      (self ? self->name() : kHostName) + "' at cycle " +
                      std::to_string(engine_.now()) +
                      " conflicts with prior " + prior_op +
                      " by thread '" + nameOf(prior.tid) +
                      "' at cycle " + std::to_string(prior.at) +
                      " with no happens-before edge";
    report(ViolationKind::Race, std::move(msg));
}

void
SimCheck::onFree(Addr addr, std::uint64_t size)
{
    const Addr end = addr + size;
    // The metadata maps only ever hold words that were actually
    // accessed/registered, so scanning them beats walking a
    // potentially multi-megabyte freed range word by word.
    for (auto it = words_.begin(); it != words_.end();) {
        it = (it->first >= addr && it->first < end) ? words_.erase(it)
                                                    : std::next(it);
    }
    for (auto it = syncClocks_.begin(); it != syncClocks_.end();) {
        it = (it->first >= addr && it->first < end)
                 ? syncClocks_.erase(it)
                 : std::next(it);
    }
    for (auto it = syncWords_.begin(); it != syncWords_.end();) {
        it = (*it >= addr && *it < end) ? syncWords_.erase(it)
                                        : std::next(it);
    }
    for (auto it = exempt_.begin(); it != exempt_.end();) {
        it = (*it >= addr && *it < end) ? exempt_.erase(it)
                                        : std::next(it);
    }
    for (auto it = deliberateLeaks_.begin();
         it != deliberateLeaks_.end();) {
        it = (it->first >= addr && it->first < end)
                 ? deliberateLeaks_.erase(it)
                 : std::next(it);
    }
}

// ----------------------------------------------------------------------
// Leak audit.
// ----------------------------------------------------------------------

void
SimCheck::registerDeliberateLeak(Addr addr, std::string reason)
{
    deliberateLeaks_[addr] = std::move(reason);
}

void
SimCheck::auditLeaks(const std::vector<LeakItem> &live)
{
    for (const LeakItem &item : live) {
        auto it = deliberateLeaks_.find(item.addr);
        if (it != deliberateLeaks_.end()) {
            trace("leak audit: %llu bytes at 0x%llx deliberately "
                  "leaked (%s)",
                  static_cast<unsigned long long>(item.bytes),
                  static_cast<unsigned long long>(item.addr),
                  it->second.c_str());
            continue;
        }
        report(ViolationKind::Leak,
               "leaked allocation: " + std::to_string(item.bytes) +
                   " bytes at " + hex(item.addr) + " (" + item.region +
                   ") still live at the leak audit and not registered "
                   "as a deliberate leak");
    }
}

// ----------------------------------------------------------------------
// Reporting.
// ----------------------------------------------------------------------

void
SimCheck::reportProtocol(const std::string &message)
{
    report(ViolationKind::Protocol, message);
}

void
SimCheck::report(ViolationKind kind, std::string message)
{
    counts_[static_cast<int>(kind)]++;
    warn("SimCheck: %s", message.c_str());
    if (config_.panicOnViolation)
        panic("SimCheck violation (HC_CHECK): %s", message.c_str());
    if (violations_.size() < config_.maxViolations)
        violations_.push_back({kind, std::move(message)});
}

std::uint64_t
SimCheck::count(ViolationKind kind) const
{
    return counts_[static_cast<int>(kind)];
}

// ----------------------------------------------------------------------
// HotQueue shadow state machine.
// ----------------------------------------------------------------------

HotQueueProtocol::HotQueueProtocol(SimCheck &check, std::string name,
                                   int num_slots)
    : check_(check), name_(std::move(name)), numSlots_(num_slots),
      slots_(static_cast<std::size_t>(num_slots))
{
}

HotQueueProtocol::~HotQueueProtocol()
{
    if (check_.engine().stopRequested())
        return; // aborted run: slots legitimately stranded mid-flight
    for (int slot = 0; slot < numSlots_; ++slot) {
        const SlotShadow &shadow =
            slots_[static_cast<std::size_t>(slot)];
        // A Zombie at teardown is a deliberately retired slot whose
        // logical call was reissued on the SDK path (Sentinel
        // reclaim) — a capacity loss, not a lost request.
        if (shadow.state == State::Free ||
            shadow.state == State::Zombie)
            continue;
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": left " + stateName(shadow.state) +
            " at teardown of a completed run (claimer '" +
            shadow.claimer + "', server '" + shadow.server + "')");
    }
}

const char *
HotQueueProtocol::stateName(State state)
{
    switch (state) {
      case State::Free: return "Free";
      case State::Publishing: return "Publishing";
      case State::Ready: return "Ready";
      case State::Serving: return "Serving";
      case State::Done: return "Done";
      case State::Zombie: return "Zombie";
    }
    return "?";
}

bool
HotQueueProtocol::transition(int slot, State from, State to,
                             const char *event)
{
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    if (shadow.state != from) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": illegal " + event + " while " +
            stateName(shadow.state) + " (expected " + stateName(from) +
            ") by thread '" + check_.currentThreadName() +
            "' at cycle " + std::to_string(check_.engine().now()));
        return false;
    }
    shadow.state = to;
    return true;
}

void
HotQueueProtocol::onClaim(int slot)
{
    // An illegal claim of a busy slot is a double-claim.
    if (transition(slot, State::Free, State::Publishing, "claim"))
        slots_[static_cast<std::size_t>(slot)].claimer =
            check_.currentThreadName();
}

void
HotQueueProtocol::onPublish(int slot)
{
    if (!transition(slot, State::Publishing, State::Ready, "publish"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    if (shadow.claimer != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": published by thread '" + check_.currentThreadName() +
            "' but claimed by thread '" + shadow.claimer + "'");
    }
}

void
HotQueueProtocol::onGrab(int slot)
{
    if (transition(slot, State::Ready, State::Serving, "grab"))
        slots_[static_cast<std::size_t>(slot)].server =
            check_.currentThreadName();
}

void
HotQueueProtocol::onComplete(int slot)
{
    if (!transition(slot, State::Serving, State::Done, "complete"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    if (shadow.server != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": completed by thread '" + check_.currentThreadName() +
            "' but grabbed by thread '" + shadow.server + "'");
    }
}

void
HotQueueProtocol::onHarvest(int slot)
{
    // An illegal harvest of a non-Done slot is a double-harvest (or a
    // harvest of someone else's in-flight request).
    if (!transition(slot, State::Done, State::Free, "harvest"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    if (shadow.claimer != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": harvested by thread '" + check_.currentThreadName() +
            "' but claimed by thread '" + shadow.claimer + "'");
    }
}

void
HotQueueProtocol::onReclaimReady(int slot)
{
    if (!transition(slot, State::Ready, State::Zombie,
                    "ready-reclaim"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    if (shadow.claimer != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": Ready slot reclaimed by thread '" +
            check_.currentThreadName() + "' but claimed by '" +
            shadow.claimer + "'");
    }
}

void
HotQueueProtocol::onReclaimServing(int slot)
{
    if (!transition(slot, State::Serving, State::Zombie,
                    "serving-reclaim"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    const std::string current = check_.currentThreadName();
    if (shadow.claimer != current) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": Serving slot reclaimed by thread '" + current +
            "' but claimed by '" + shadow.claimer +
            "' (only the waiting claimer may give up on its own "
            "request)");
    }
}

void
HotQueueProtocol::onReclaimPublishing(int slot)
{
    if (!transition(slot, State::Publishing, State::Zombie,
                    "publishing-reclaim"))
        return;
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    const std::string current = check_.currentThreadName();
    if (shadow.claimer == current) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": Publishing slot reclaimed by its own claimer '" +
            current + "' (the claimer must publish or keep the slot; "
            "only the head scan may retire a stalled publisher)");
    }
}

void
HotQueueProtocol::onZombieRetire(int slot)
{
    if (transition(slot, State::Zombie, State::Free, "zombie-retire")) {
        SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
        shadow.claimer.clear();
        shadow.server.clear();
    }
}

void
HotQueueProtocol::onArenaRecycle(int slot)
{
    SlotShadow &shadow = slots_[static_cast<std::size_t>(slot)];
    const std::string current = check_.currentThreadName();
    const bool legal =
        (shadow.state == State::Publishing && shadow.claimer == current) ||
        (shadow.state == State::Serving && shadow.server == current);
    if (!legal) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "' slot " + std::to_string(slot) +
            ": staging arena recycled while " +
            stateName(shadow.state) + " by thread '" + current +
            "' (legal only for the claimer while Publishing or the "
            "server while Serving) at cycle " +
            std::to_string(check_.engine().now()));
    }
}

void
HotQueueProtocol::onCursors(std::uint64_t head, std::uint64_t tail)
{
    if (tail < head ||
        tail - head > static_cast<std::uint64_t>(numSlots_)) {
        check_.reportProtocol(
            "hotqueue '" + name_ + "': cursor invariant violated: "
            "head=" + std::to_string(head) +
            " tail=" + std::to_string(tail) +
            " numSlots=" + std::to_string(numSlots_) +
            " (want head <= tail <= head + numSlots)");
    }
}

// ----------------------------------------------------------------------
// HotCall shadow state machine.
// ----------------------------------------------------------------------

HotCallProtocol::HotCallProtocol(SimCheck &check, std::string name)
    : check_(check), name_(std::move(name))
{
}

HotCallProtocol::~HotCallProtocol()
{
    if (check_.engine().stopRequested())
        return; // aborted run: channel legitimately stranded mid-call
    if (locked_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': lock still held by '" + holder_ +
            "' at teardown of a completed run");
    }
    if (go_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': request still in flight" +
            (serving_ ? " (being served by '" + server_ + "')"
                      : std::string()) +
            " at teardown of a completed run");
    }
}

void
HotCallProtocol::onLock()
{
    if (locked_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': lock taken by thread '" +
            check_.currentThreadName() + "' while already held by '" +
            holder_ + "' at cycle " +
            std::to_string(check_.engine().now()));
        return;
    }
    locked_ = true;
    holder_ = check_.currentThreadName();
}

void
HotCallProtocol::onUnlock()
{
    if (!locked_) {
        check_.reportProtocol("hotcall '" + name_ +
                              "': unlock of a free lock by thread '" +
                              check_.currentThreadName() + "'");
        return;
    }
    if (holder_ != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': unlock by thread '" +
            check_.currentThreadName() + "' but held by '" + holder_ +
            "'");
    }
    locked_ = false;
}

void
HotCallProtocol::onPublish()
{
    if (!locked_ || holder_ != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': publish by thread '" +
            check_.currentThreadName() +
            "' without holding the channel lock");
    }
    if (go_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': publish by thread '" +
            check_.currentThreadName() +
            "' while a request is already in flight");
        return;
    }
    go_ = true;
    serving_ = false;
    abandoned_ = false;
    publisher_ = check_.currentThreadName();
}

void
HotCallProtocol::onServe()
{
    if (!go_ || serving_ || abandoned_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': serve by thread '" +
            check_.currentThreadName() +
            (serving_
                 ? "' of a request already being served"
                 : (abandoned_
                        ? "' of an abandoned request (the publisher "
                          "already reissued it; it must be discarded)"
                        : "' with no published request")));
        return;
    }
    serving_ = true;
    server_ = check_.currentThreadName();
}

void
HotCallProtocol::onAbandon()
{
    const std::string current = check_.currentThreadName();
    if (!go_ || serving_ || abandoned_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': abandon by thread '" + current +
            (serving_ ? "' of a request already being served"
                      : (abandoned_ ? "' of an already-abandoned "
                                      "request"
                                    : "' with no published request")));
        return;
    }
    if (publisher_ != current) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': abandon by thread '" + current +
            "' but published by '" + publisher_ + "'");
    }
    abandoned_ = true;
}

void
HotCallProtocol::onDiscard()
{
    if (!go_ || !abandoned_ || serving_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': discard by thread '" +
            check_.currentThreadName() +
            (go_ ? "' of a request that was never abandoned"
                 : "' with no request in flight"));
        return;
    }
    go_ = false;
    abandoned_ = false;
}

void
HotCallProtocol::onComplete()
{
    if (!go_ || !serving_) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': completion by thread '" +
            check_.currentThreadName() +
            (go_ ? "' of a request that was never served"
                 : "' with no request in flight"));
        return;
    }
    if (server_ != check_.currentThreadName()) {
        check_.reportProtocol(
            "hotcall '" + name_ + "': completion by thread '" +
            check_.currentThreadName() + "' but served by '" +
            server_ + "'");
    }
    go_ = false;
    serving_ = false;
}

} // namespace hc::check
