/**
 * @file
 * SimCheck: a deterministic correctness layer for the simulator.
 *
 * The HotCalls argument rests on a carefully ordered shared-memory
 * protocol (spin-lock word, busy flag, slot lifecycle) between
 * requester and responder, and the HotQueue ring multiplied the
 * number of concurrently mutated lines. SimCheck makes the intended
 * orderliness of those interactions mechanically checkable while the
 * discrete-event engine runs:
 *
 *  - a virtual-time race detector over priced word accesses
 *    (mem::MemoryModel::accessWord / mem::SharedVar). Every simulated
 *    thread carries a vector clock; happens-before edges come from
 *    sim::WaitQueue wakeups, SDK mutex/condvar operations, thread
 *    spawn/join, and accesses to registered *sync words* (the
 *    HotCalls channel lines, SharedVar/spin-lock words), which behave
 *    like atomics: readers acquire the line's release clock, writers
 *    publish theirs. A cross-thread pair of conflicting accesses to a
 *    plain word with no ordering edge is a violation. Because fibers
 *    are cooperatively scheduled and interleave only at priced
 *    boundaries, the detector is exact and deterministic: a race is
 *    reported on the access that completes it, every run.
 *
 *  - protocol state machines shadowing the HotCall single-line
 *    channel (lock/publish/serve/complete) and the HotQueue slot
 *    lifecycle (Free -> Publishing -> Ready -> Serving -> Done ->
 *    Free, no double-claim or double-harvest, head <= tail <=
 *    head + numSlots). The channels report the transitions they
 *    perform; the shadow flags illegal ones.
 *
 *  - a leak audit over the simulated AddressSpace at Machine
 *    teardown: any allocation still live that was not explicitly
 *    registered as a deliberate leak is a violation.
 *
 * The layer is enabled per Machine (MachineConfig::check) or for a
 * whole process with the HC_CHECK environment variable, in which case
 * violations panic so a test run fails loudly.
 */

#ifndef HC_CHECK_CHECK_HH
#define HC_CHECK_CHECK_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/engine.hh"
#include "support/units.hh"

namespace hc::check {

/** SimCheck tunables (MachineConfig::check). */
struct CheckConfig {
    /** Enable the checker regardless of the HC_CHECK environment
     *  variable. Explicit configuration wins over the environment. */
    bool enabled = false;
    /** Abort (panic) on the first violation instead of recording it.
     *  HC_CHECK=1 implies this so an unattended test run fails. */
    bool panicOnViolation = false;
    /** Recorded-violation cap; reports beyond it are only counted. */
    std::size_t maxViolations = 256;
};

/** Detector that produced a violation. */
enum class ViolationKind {
    Race,     //!< unordered conflicting accesses to a plain word
    Protocol, //!< illegal channel/slot state transition
    Leak,     //!< allocation still live at the leak audit
};

/** One recorded violation. */
struct Violation {
    ViolationKind kind;
    std::string message;
};

/**
 * The per-Machine checker. Owned by mem::Machine; lower layers reach
 * it through Machine::check() (null when checking is off), so every
 * hook below is a no-op in ordinary runs.
 */
class SimCheck : public sim::EngineObserver
{
  public:
    SimCheck(sim::Engine &engine, CheckConfig config);
    ~SimCheck() override = default;

    SimCheck(const SimCheck &) = delete;
    SimCheck &operator=(const SimCheck &) = delete;

    // ------------------------------------------------------------------
    // Scheduler events (sim::EngineObserver): happens-before sources.
    // ------------------------------------------------------------------

    void onSpawn(sim::Thread *parent, sim::Thread *child) override;
    void onWake(sim::Thread *waker, sim::Thread *woken) override;
    void onThreadExit(sim::Thread *thread) override;

    /** Record that the current thread observed @p joined terminate
     *  (a polling join): the joined thread's final clock is acquired. */
    void joinEdge(sim::Thread *joined);

    // ------------------------------------------------------------------
    // Race detector.
    // ------------------------------------------------------------------

    /** One priced word access by the current thread (hooked from
     *  mem::MemoryModel::accessWord). */
    void onWordAccess(Addr addr, bool write);

    /**
     * One bulk transfer of [addr, addr+len) by the current thread
     * (hooked from mem::MemoryModel::readBuffer/writeBuffer and the
     * marshalling copies). Bulk data is priced at stream granularity
     * and stays exempt from per-word race tracking, but any
     * registered sync word inside the span keeps its acquire/release
     * semantics — a channel line or SharedVar word does not lose its
     * ordering edges just because it was touched by a range op.
     */
    void onSpanAccess(Addr addr, std::uint64_t len, bool write);

    /** Treat the word at @p addr as a synchronization word (atomic):
     *  accesses are exempt from race checks and create acquire/release
     *  edges instead. SharedVar and the HotCalls channel lines
     *  register themselves. */
    void registerSyncWord(Addr addr);

    /** Exempt @p addr from race checking without sync semantics (used
     *  for modelled microarchitectural context lines, whose accesses
     *  are serialized by the hardware being modelled). */
    void markExempt(Addr addr);

    /** Acquire edge on @p obj for the current thread (mutex lock). */
    void acquireEdge(const void *obj);

    /** Release edge on @p obj for the current thread (mutex unlock). */
    void releaseEdge(const void *obj);

    /** A simulated allocation was freed: drop all per-word metadata
     *  in [addr, addr+size) so a reused address starts clean. */
    void onFree(Addr addr, std::uint64_t size);

    // ------------------------------------------------------------------
    // Leak audit.
    // ------------------------------------------------------------------

    /** Exempt @p addr from the leak audit (an allocation intentionally
     *  left live, e.g. a channel line held by an unjoined responder). */
    void registerDeliberateLeak(Addr addr, std::string reason);

    /** One still-live allocation, as gathered by mem::Machine. */
    struct LeakItem {
        Addr addr;
        std::uint64_t bytes;
        const char *region; //!< "untrusted" or "epc"
    };

    /** Audit @p live allocations; every item not registered as a
     *  deliberate leak becomes a Leak violation. */
    void auditLeaks(const std::vector<LeakItem> &live);

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    /** Record a protocol violation (used by the shadow machines). */
    void reportProtocol(const std::string &message);

    /** @return every recorded violation, in detection order. */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** @return violations of @p kind detected so far (including any
     *  beyond the recording cap). */
    std::uint64_t count(ViolationKind kind) const;

    /** @return the engine this checker observes. */
    sim::Engine &engine() { return engine_; }

    /** @return the current thread's debug name ("<host>" outside). */
    std::string currentThreadName() const;

  private:
    using Clock = std::vector<std::uint64_t>;

    /** One plain-word access, for conflict checks and reports. */
    struct Access {
        std::uint64_t tid = 0;
        std::uint64_t epoch = 0;
        Cycles at = 0;
        bool valid = false;
    };

    /** Shadow state of one plain word. */
    struct WordState {
        Access write;
        std::vector<Access> reads; //!< last read per thread
    };

    /** Per-thread vector-clock state. */
    struct ThreadInfo {
        Clock clock;
        std::string name;
        bool known = false;
    };

    /** @return the info slot for @p thread, created on first sight. */
    ThreadInfo &info(sim::Thread *thread);

    /** Elementwise max of @p from into @p into. */
    static void join(Clock &into, const Clock &from);

    /** @return true when @p access happens-before the thread owning
     *  @p clock. */
    static bool ordered(const Access &access, const Clock &clock);

    /** @return the display name of thread @p tid. */
    const std::string &nameOf(std::uint64_t tid) const;

    void report(ViolationKind kind, std::string message);

    void reportRace(const char *current_op, const char *prior_op,
                    Addr addr, const Access &prior);

    sim::Engine &engine_;
    CheckConfig config_;

    std::vector<ThreadInfo> threads_; //!< indexed by sim thread id
    std::unordered_map<Addr, WordState> words_;
    std::unordered_map<Addr, Clock> syncClocks_;
    /** Ordered so onSpanAccess() can range-query words in a span. */
    std::set<Addr> syncWords_;
    std::unordered_set<Addr> exempt_;
    std::unordered_map<const void *, Clock> objectClocks_;
    std::unordered_map<Addr, std::string> deliberateLeaks_;

    std::vector<Violation> violations_;
    std::uint64_t counts_[3] = {0, 0, 0};
};

/**
 * Shadow state machine of one HotQueue ring (hotqueue.hh). The queue
 * reports every transition it performs; the shadow validates the slot
 * lifecycle, ownership (publisher = claimer, completer = grabber,
 * harvester = claimer) and the cursor invariant.
 */
class HotQueueProtocol
{
  public:
    /**
     * @param check      violation sink (also supplies thread identity)
     * @param name       queue name used in reports
     * @param num_slots  ring capacity (cursor invariant bound)
     */
    HotQueueProtocol(SimCheck &check, std::string name, int num_slots);

    /**
     * Teardown assertion (fault-aware): when the queue dies after a
     * run that completed normally, every slot must have come back to
     * Free — a slot stuck mid-lifecycle means a lost request. An
     * aborted run (Engine::stop(), fault-injected or not) legitimately
     * strands slots in any state, so the assertion is skipped then.
     */
    ~HotQueueProtocol();

    void onClaim(int slot);    //!< Free -> Publishing, by a requester
    void onPublish(int slot);  //!< Publishing -> Ready, by the claimer
    void onGrab(int slot);     //!< Ready -> Serving, by a responder
    void onComplete(int slot); //!< Serving -> Done, by the grabber
    void onHarvest(int slot);  //!< Done -> Free, by the claimer

    // ------------------------------------------------------------------
    // Sentinel reclaim transitions (guard/guard.hh). A reclaimed slot
    // goes to Zombie — out of circulation but not yet reusable — and
    // comes back Free via onZombieRetire once every party that might
    // still reference it has let go.
    // ------------------------------------------------------------------

    /** Ready -> Zombie: the claimer gave up on a published request no
     *  responder ever grabbed. Legal only for the claimer. */
    void onReclaimReady(int slot);

    /** Serving -> Zombie: the claimer gave up on a grabbed request
     *  whose server never started executing it. Legal only for the
     *  claimer — the server must use onComplete, never reclaim. */
    void onReclaimServing(int slot);

    /** Publishing -> Zombie: the head scan retired a slot whose
     *  claimer stalled mid-marshal. Legal only for a NON-claimer (the
     *  claimer itself must publish or keep the slot). */
    void onReclaimPublishing(int slot);

    /** Zombie -> Free: the retired slot rejoins the ring. */
    void onZombieRetire(int slot);

    /**
     * The slot's FastPath staging arena is about to be recycled
     * (bump pointer reset: every piece of the previous call on this
     * slot is released). Legal only for the party that owns the slot
     * at that point: the claimer while Publishing (ocall staging) or
     * the server while Serving (ecall staging). Anything else — in
     * particular recycling while a responder is still Serving from
     * the arena, or after the slot was already released — would let a
     * new request scribble over an in-flight call's payload.
     */
    void onArenaRecycle(int slot);

    /** Validate head <= tail <= head + numSlots. */
    void onCursors(std::uint64_t head, std::uint64_t tail);

  private:
    enum class State { Free, Publishing, Ready, Serving, Done, Zombie };

    struct SlotShadow {
        State state = State::Free;
        std::string claimer;
        std::string server;
    };

    static const char *stateName(State state);

    /** Validate @p slot is in @p from and move it to @p to.
     *  @return false when a violation was reported instead. */
    bool transition(int slot, State from, State to, const char *event);

    SimCheck &check_;
    std::string name_;
    int numSlots_;
    std::vector<SlotShadow> slots_;
};

/**
 * Shadow state machine of the single-line HotCall channel
 * (hotcall.hh): spin-lock ownership, publish-under-lock, and the
 * busy/"go" flag lifecycle.
 */
class HotCallProtocol
{
  public:
    HotCallProtocol(SimCheck &check, std::string name);

    /**
     * Teardown assertion (fault-aware): after a normally completed
     * run the channel must be quiescent — lock free, no request in
     * flight. Aborted runs are exempt (the requester or responder was
     * stranded mid-protocol by Engine::stop()).
     */
    ~HotCallProtocol();

    void onLock();     //!< lock word taken (must have been free)
    void onUnlock();   //!< lock word released (by the holder)
    void onPublish();  //!< request published ("go" raised, under lock)
    void onServe();    //!< responder committed to the published request
    void onComplete(); //!< "go" cleared after execution (by the server)

    /** The publisher gave up on a request no responder committed to
     *  (Sentinel abandon). Legal only while published-but-unserved,
     *  and only for the publisher; the channel stays poisoned until a
     *  responder discards the stale request. */
    void onAbandon();

    /** A responder dropped an abandoned request without serving it
     *  (the channel is clean again). Legal only after onAbandon. */
    void onDiscard();

  private:
    SimCheck &check_;
    std::string name_;
    bool locked_ = false;
    bool go_ = false;
    bool serving_ = false;
    bool abandoned_ = false;
    std::string holder_;
    std::string server_;
    std::string publisher_;
};

} // namespace hc::check

#endif // HC_CHECK_CHECK_HH
