/**
 * @file
 * ChaCha20, Poly1305 and the RFC 8439 AEAD composition.
 */

#include "crypto/chacha20.hh"

#include <algorithm>
#include <cstring>

namespace hc::crypto {

namespace {

std::uint32_t
rotl32(std::uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

void
quarterRound(std::uint32_t &a, std::uint32_t &b, std::uint32_t &c,
             std::uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

std::uint32_t
load32le(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

void
store32le(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

/** Produce one 64-byte keystream block. */
void
chachaBlock(const ChaChaKey &key, const ChaChaNonce &nonce,
            std::uint32_t counter, std::uint8_t out[64])
{
    std::uint32_t state[16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        state[4 + i] = load32le(key.data() + 4 * i);
    state[12] = counter;
    for (int i = 0; i < 3; ++i)
        state[13 + i] = load32le(nonce.data() + 4 * i);

    std::uint32_t x[16];
    std::memcpy(x, state, sizeof(x));
    for (int round = 0; round < 10; ++round) {
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i)
        store32le(out + 4 * i, x[i] + state[i]);
}

} // anonymous namespace

void
chacha20Xor(const ChaChaKey &key, const ChaChaNonce &nonce,
            std::uint32_t counter, std::uint8_t *data, std::size_t len)
{
    std::uint8_t block[64];
    std::size_t off = 0;
    while (off < len) {
        chachaBlock(key, nonce, counter++, block);
        const std::size_t take = std::min<std::size_t>(64, len - off);
        for (std::size_t i = 0; i < take; ++i)
            data[off + i] ^= block[i];
        off += take;
    }
}

PolyTag
poly1305(const std::uint8_t key[32], const std::uint8_t *msg,
         std::size_t len)
{
    // 130-bit arithmetic in five 26-bit limbs (the classic donna
    // formulation).
    std::uint32_t r0, r1, r2, r3, r4;
    std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

    r0 = load32le(key + 0) & 0x3ffffff;
    r1 = (load32le(key + 3) >> 2) & 0x3ffff03;
    r2 = (load32le(key + 6) >> 4) & 0x3ffc0ff;
    r3 = (load32le(key + 9) >> 6) & 0x3f03fff;
    r4 = (load32le(key + 12) >> 8) & 0x00fffff;

    const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5,
                        s4 = r4 * 5;

    std::size_t remaining = len;
    const std::uint8_t *p = msg;
    while (remaining > 0) {
        std::uint8_t block[17] = {0};
        const std::size_t take = std::min<std::size_t>(16, remaining);
        std::memcpy(block, p, take);
        block[take] = 1; // pad bit
        p += take;
        remaining -= take;

        h0 += load32le(block + 0) & 0x3ffffff;
        h1 += (load32le(block + 3) >> 2) & 0x3ffffff;
        h2 += (load32le(block + 6) >> 4) & 0x3ffffff;
        h3 += (load32le(block + 9) >> 6) & 0x3ffffff;
        h4 += (load32le(block + 12) >> 8) |
              (std::uint32_t(block[16]) << 24);

        std::uint64_t d0 =
            std::uint64_t(h0) * r0 + std::uint64_t(h1) * s4 +
            std::uint64_t(h2) * s3 + std::uint64_t(h3) * s2 +
            std::uint64_t(h4) * s1;
        std::uint64_t d1 =
            std::uint64_t(h0) * r1 + std::uint64_t(h1) * r0 +
            std::uint64_t(h2) * s4 + std::uint64_t(h3) * s3 +
            std::uint64_t(h4) * s2;
        std::uint64_t d2 =
            std::uint64_t(h0) * r2 + std::uint64_t(h1) * r1 +
            std::uint64_t(h2) * r0 + std::uint64_t(h3) * s4 +
            std::uint64_t(h4) * s3;
        std::uint64_t d3 =
            std::uint64_t(h0) * r3 + std::uint64_t(h1) * r2 +
            std::uint64_t(h2) * r1 + std::uint64_t(h3) * r0 +
            std::uint64_t(h4) * s4;
        std::uint64_t d4 =
            std::uint64_t(h0) * r4 + std::uint64_t(h1) * r3 +
            std::uint64_t(h2) * r2 + std::uint64_t(h3) * r1 +
            std::uint64_t(h4) * r0;

        std::uint32_t carry;
        carry = static_cast<std::uint32_t>(d0 >> 26);
        h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
        d1 += carry;
        carry = static_cast<std::uint32_t>(d1 >> 26);
        h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
        d2 += carry;
        carry = static_cast<std::uint32_t>(d2 >> 26);
        h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
        d3 += carry;
        carry = static_cast<std::uint32_t>(d3 >> 26);
        h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
        d4 += carry;
        carry = static_cast<std::uint32_t>(d4 >> 26);
        h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 += carry;
    }

    // Full carry and reduction mod 2^130 - 5.
    std::uint32_t carry;
    carry = h1 >> 26; h1 &= 0x3ffffff; h2 += carry;
    carry = h2 >> 26; h2 &= 0x3ffffff; h3 += carry;
    carry = h3 >> 26; h3 &= 0x3ffffff; h4 += carry;
    carry = h4 >> 26; h4 &= 0x3ffffff; h0 += carry * 5;
    carry = h0 >> 26; h0 &= 0x3ffffff; h1 += carry;

    // Compute h + -p and select.
    std::uint32_t g0 = h0 + 5;
    carry = g0 >> 26; g0 &= 0x3ffffff;
    std::uint32_t g1 = h1 + carry;
    carry = g1 >> 26; g1 &= 0x3ffffff;
    std::uint32_t g2 = h2 + carry;
    carry = g2 >> 26; g2 &= 0x3ffffff;
    std::uint32_t g3 = h3 + carry;
    carry = g3 >> 26; g3 &= 0x3ffffff;
    std::uint32_t g4 = h4 + carry - (1u << 26);

    const std::uint32_t mask = (g4 >> 31) - 1; // all-ones if h >= p
    h0 = (h0 & ~mask) | (g0 & mask);
    h1 = (h1 & ~mask) | (g1 & mask);
    h2 = (h2 & ~mask) | (g2 & mask);
    h3 = (h3 & ~mask) | (g3 & mask);
    h4 = (h4 & ~mask) | (g4 & mask);

    // Serialize h to 128 bits.
    const std::uint32_t o0 = h0 | (h1 << 26);
    const std::uint32_t o1 = (h1 >> 6) | (h2 << 20);
    const std::uint32_t o2 = (h2 >> 12) | (h3 << 14);
    const std::uint32_t o3 = (h3 >> 18) | (h4 << 8);

    // Add the 128-bit pad s.
    std::uint64_t f;
    PolyTag tag;
    f = std::uint64_t(o0) + load32le(key + 16);
    store32le(tag.data() + 0, static_cast<std::uint32_t>(f));
    f = std::uint64_t(o1) + load32le(key + 20) + (f >> 32);
    store32le(tag.data() + 4, static_cast<std::uint32_t>(f));
    f = std::uint64_t(o2) + load32le(key + 24) + (f >> 32);
    store32le(tag.data() + 8, static_cast<std::uint32_t>(f));
    f = std::uint64_t(o3) + load32le(key + 28) + (f >> 32);
    store32le(tag.data() + 12, static_cast<std::uint32_t>(f));
    return tag;
}

namespace {

/** RFC 8439 tag input: aad || pad || ct || pad || len(aad) || len(ct). */
PolyTag
aeadTag(const ChaChaKey &key, const ChaChaNonce &nonce,
        const std::uint8_t *aad, std::size_t aad_len,
        const std::uint8_t *ciphertext, std::size_t ct_len)
{
    // One-time Poly1305 key = first 32 bytes of block 0 keystream.
    std::uint8_t poly_key[64] = {0};
    chacha20Xor(key, nonce, 0, poly_key, sizeof(poly_key));

    std::vector<std::uint8_t> mac_data;
    mac_data.reserve(aad_len + ct_len + 32);
    auto pad16 = [&]() {
        while (mac_data.size() % 16 != 0)
            mac_data.push_back(0);
    };
    mac_data.insert(mac_data.end(), aad, aad + aad_len);
    pad16();
    mac_data.insert(mac_data.end(), ciphertext, ciphertext + ct_len);
    pad16();
    for (int i = 0; i < 8; ++i)
        mac_data.push_back(
            static_cast<std::uint8_t>(std::uint64_t(aad_len) >> (8 * i)));
    for (int i = 0; i < 8; ++i)
        mac_data.push_back(
            static_cast<std::uint8_t>(std::uint64_t(ct_len) >> (8 * i)));

    return poly1305(poly_key, mac_data.data(), mac_data.size());
}

} // anonymous namespace

void
aeadSeal(const ChaChaKey &key, const ChaChaNonce &nonce,
         const std::uint8_t *aad, std::size_t aad_len,
         const std::uint8_t *plaintext, std::size_t len,
         std::uint8_t *out_ciphertext, PolyTag *out_tag)
{
    if (len > 0)
        std::memmove(out_ciphertext, plaintext, len);
    chacha20Xor(key, nonce, 1, out_ciphertext, len);
    *out_tag = aeadTag(key, nonce, aad, aad_len, out_ciphertext, len);
}

bool
aeadOpen(const ChaChaKey &key, const ChaChaNonce &nonce,
         const std::uint8_t *aad, std::size_t aad_len,
         const std::uint8_t *ciphertext, std::size_t len,
         const PolyTag &tag, std::uint8_t *out_plaintext)
{
    const PolyTag expected =
        aeadTag(key, nonce, aad, aad_len, ciphertext, len);
    // Constant-time comparison.
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < expected.size(); ++i)
        diff |= expected[i] ^ tag[i];
    if (diff != 0)
        return false;
    if (len > 0)
        std::memmove(out_plaintext, ciphertext, len);
    chacha20Xor(key, nonce, 1, out_plaintext, len);
    return true;
}

} // namespace hc::crypto
