/**
 * @file
 * ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439).
 *
 * This is the data-plane cipher for the openVPN-like tunnel
 * application: the tunnel genuinely encrypts and authenticates every
 * packet, so the VPN experiments exercise a real cryptographic
 * pipeline (the paper's openVPN uses OpenSSL).
 */

#ifndef HC_CRYPTO_CHACHA20_HH
#define HC_CRYPTO_CHACHA20_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hc::crypto {

/** A 256-bit ChaCha20 key. */
using ChaChaKey = std::array<std::uint8_t, 32>;

/** A 96-bit ChaCha20 nonce. */
using ChaChaNonce = std::array<std::uint8_t, 12>;

/** A 128-bit Poly1305 authentication tag. */
using PolyTag = std::array<std::uint8_t, 16>;

/**
 * XOR @p len bytes of keystream into @p data in place.
 *
 * @param key      cipher key
 * @param nonce    per-message nonce
 * @param counter  initial 32-bit block counter
 * @param data     buffer encrypted/decrypted in place
 * @param len      buffer length
 */
void chacha20Xor(const ChaChaKey &key, const ChaChaNonce &nonce,
                 std::uint32_t counter, std::uint8_t *data,
                 std::size_t len);

/**
 * Poly1305 one-time authenticator over @p msg with @p key
 * (32-byte one-time key).
 */
PolyTag poly1305(const std::uint8_t key[32], const std::uint8_t *msg,
                 std::size_t len);

/**
 * ChaCha20-Poly1305 AEAD seal (RFC 8439 section 2.8).
 *
 * @param key    long-term key
 * @param nonce  unique per-message nonce
 * @param aad    additional authenticated data (may be null when empty)
 * @param aad_len  AAD length
 * @param plaintext  input plaintext
 * @param len    plaintext length
 * @param out_ciphertext  receives len bytes of ciphertext
 * @param out_tag  receives the 16-byte tag
 */
void aeadSeal(const ChaChaKey &key, const ChaChaNonce &nonce,
              const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *plaintext, std::size_t len,
              std::uint8_t *out_ciphertext, PolyTag *out_tag);

/**
 * ChaCha20-Poly1305 AEAD open.
 *
 * @return true and fills @p out_plaintext when the tag verifies;
 *         false (and leaves the output untouched) otherwise.
 */
bool aeadOpen(const ChaChaKey &key, const ChaChaNonce &nonce,
              const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *ciphertext, std::size_t len,
              const PolyTag &tag, std::uint8_t *out_plaintext);

} // namespace hc::crypto

#endif // HC_CRYPTO_CHACHA20_HH
