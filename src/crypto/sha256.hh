/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used functionally by the SGX layer: enclave measurements (MRENCLAVE
 * is the running SHA-256 over ECREATE/EADD/EEXTEND records, mirroring
 * real SGX) and the HMAC-based report/attestation keys.
 */

#ifndef HC_CRYPTO_SHA256_HH
#define HC_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hc::crypto {

/** A 256-bit digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len);

    /** Absorb a string view. */
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the digest; the hasher must not be reused. */
    Sha256Digest finish();

    /** One-shot convenience digest. */
    static Sha256Digest digest(const void *data, std::size_t len);

    /** One-shot convenience digest of a string view. */
    static Sha256Digest digest(std::string_view s);

    /** Render a digest as lowercase hex. */
    static std::string hex(const Sha256Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t state_[8];
    std::uint64_t bitLen_ = 0;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_ = 0;
    bool finished_ = false;
};

/**
 * HMAC-SHA256 (RFC 2104).
 *
 * @param key      MAC key bytes
 * @param key_len  key length
 * @param msg      message bytes
 * @param msg_len  message length
 * @return the 32-byte tag
 */
Sha256Digest hmacSha256(const void *key, std::size_t key_len,
                        const void *msg, std::size_t msg_len);

} // namespace hc::crypto

#endif // HC_CRYPTO_SHA256_HH
