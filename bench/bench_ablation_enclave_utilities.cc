/**
 * @file
 * Ablation (paper §6.3/§6.4): implement pure-utility libc calls
 * (inet_ntop, inet_addr) inside the enclave instead of ocall-ing
 * out. The paper notes this removes ~9% of lighttpd's ocalls; this
 * bench measures the ocall-rate reduction and the throughput gain
 * on the SDK-call configuration, where each avoided ocall saves
 * ~8.3k cycles.
 */

#include <cstring>

#include "apps/httpd.hh"
#include "bench/bench_common.hh"
#include "workloads/httpload.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct Result {
    double pagesPerSec = 0;
    double ocallsPerSec = 0;
};

Result
runHttpdWith(bool utilities_in_enclave, double seconds)
{
    mem::MachineConfig machine_config;
    machine_config.engine.numCores = 8;
    machine_config.engine.seed = 7;
    mem::Machine machine(machine_config);
    sgx::SgxPlatform platform(machine);
    os::Kernel kernel(machine);

    port::PortConfig port_config;
    port_config.mode = port::Mode::Sgx;
    port_config.utilitiesInEnclave = utilities_in_enclave;
    port::PortedApp app(platform, kernel, "lighttpd", port_config);

    apps::HttpServer server(app);
    workloads::HttpLoadClient client(kernel, server.listenPort());

    Result result;
    auto &engine = machine.engine();
    engine.spawn("driver", 7, [&] {
        server.start(0);
        engine.sleepFor(secondsToCycles(0.002));
        client.start(4);
        engine.sleepFor(secondsToCycles(0.04));
        app.resetCounters();
        const auto done0 = client.completed();
        const Cycles t0 = machine.now();
        engine.sleepFor(secondsToCycles(seconds));
        const double window = cyclesToSeconds(machine.now() - t0);
        result.pagesPerSec =
            static_cast<double>(client.completed() - done0) / window;
        for (const auto &entry : app.callCounts()) {
            if (entry.first.find("(enclave)") == std::string::npos &&
                entry.first != "RunEnclaveFucntion") {
                result.ocallsPerSec +=
                    static_cast<double>(entry.second) / window;
            }
        }
        client.stop();
        server.stop();
        engine.stop();
    });
    engine.run();
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double seconds = 0.15;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::atof(argv[i] + 10);

    std::printf("Ablation: utility libc calls inside the enclave "
                "(SGX lighttpd; paper §6.4)\n\n");
    const Result ocall = runHttpdWith(false, seconds);
    const Result trusted = runHttpdWith(true, seconds);

    const double before_per_page =
        ocall.ocallsPerSec / ocall.pagesPerSec;
    const double after_per_page =
        trusted.ocallsPerSec / trusted.pagesPerSec;
    TextTable table({"configuration", "pages/s", "ocalls/s",
                     "ocalls/page", "per-page reduction"});
    table.addRow({"inet_ntop/inet_addr via ocall",
                  TextTable::num(ocall.pagesPerSec, 0),
                  TextTable::num(ocall.ocallsPerSec, 0),
                  TextTable::num(before_per_page, 1), "-"});
    table.addRow(
        {"inet_ntop/inet_addr in-enclave",
         TextTable::num(trusted.pagesPerSec, 0),
         TextTable::num(trusted.ocallsPerSec, 0),
         TextTable::num(after_per_page, 1),
         TextTable::num(
             (1 - after_per_page / before_per_page) * 100, 1) +
             "%"});
    table.print();
    std::printf("\npaper: these calls \"don't require OS involvement "
                "and can be implemented inside\nthe enclave, "
                "reducing by 9%% the number of ocalls\"\n");
    return 0;
}
