/**
 * @file
 * Ablation (paper §4.2 "Conserving resources at idle times" / §4.4):
 * the responder's idle-sleep mode. Compares the responder core's
 * cycle burn while idle (always-spin vs sleep-after-N-polls) and the
 * first-call latency after an idle period (the wake-up penalty).
 */

#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct Result {
    std::uint64_t idlePolls = 0;
    std::uint64_t sleeps = 0;
    double wakeCallLatency = 0;
    double warmCallLatency = 0;
};

Result
runSleepConfig(bool sleep_enabled, double idle_seconds)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &machine = *bed.machine;
    auto &engine = machine.engine();

    hotcalls::HotCallConfig config;
    config.responderSleep = sleep_enabled;
    config.idlePollsBeforeSleep = 2'000;
    hotcalls::HotCallService hot(*bed.runtime,
                                 hotcalls::Kind::HotEcall, 1, config);
    const int id = bed.runtime->ecallId("ecall_empty");

    Result result;
    engine.spawn("driver", 0, [&] {
        hot.start();
        // Warm call, then a long idle period.
        hot.call(id, {});
        const std::uint64_t polls0 = hot.stats().responderPolls;
        engine.sleepFor(secondsToCycles(idle_seconds));
        result.idlePolls = hot.stats().responderPolls - polls0;
        result.sleeps = hot.stats().responderSleeps;

        // First call after idling: includes the wake-up penalty.
        Cycles t0 = machine.now();
        hot.call(id, {});
        result.wakeCallLatency =
            static_cast<double>(machine.now() - t0);

        // Steady-state call right after.
        t0 = machine.now();
        hot.call(id, {});
        result.warmCallLatency =
            static_cast<double>(machine.now() - t0);

        hot.stop();
        engine.stop();
    });
    engine.run();
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double idle_seconds = 0.002; // 8M idle cycles at 4 GHz
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--idle-seconds=", 15) == 0)
            idle_seconds = std::atof(argv[i] + 15);
    }
    std::printf("Ablation: responder idle-sleep "
                "(2k idle polls before parking; %.0fM-cycle idle "
                "gap)\n\n",
                static_cast<double>(secondsToCycles(idle_seconds)) /
                    1e6);
    TextTable table({"policy", "idle polls", "times slept",
                     "call-after-idle", "steady-state call"});
    for (bool sleep_enabled : {false, true}) {
        const Result r = runSleepConfig(sleep_enabled, idle_seconds);
        table.addRow({sleep_enabled ? "sleep on condvar"
                                    : "always spin (paper default)",
                      std::to_string(r.idlePolls),
                      std::to_string(r.sleeps),
                      TextTable::cycles(r.wakeCallLatency),
                      TextTable::cycles(r.warmCallLatency)});
    }
    table.print();
    std::printf("\nsleeping frees the logical core during idle (no "
                "polling burn) at the cost of a\ncondition-variable "
                "wake on the next call — the paper's suggested "
                "trade for idle\nperiods (Sections 4.2, 4.4)\n");
    return 0;
}
