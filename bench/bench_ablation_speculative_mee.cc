/**
 * @file
 * Extension ablation: speculative MEE loading. The paper's §6.2
 * closes by noting that memcached remains memory-bound even with
 * HotCalls and points to PoisonIvy-style safe speculation [22] as a
 * way to recover encrypted-memory performance. This bench adds that
 * mechanism as a model option (forward decrypted data while
 * verification completes off the critical path) and measures how
 * far it moves the paper's memory results.
 */

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.hh"
#include "workloads/spec.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct Numbers {
    double read2k = 0, read32k = 0; //!< encrypted-read overhead, %
    double mcf = 0, libq = 0;       //!< encrypted/plain ratios
};

Numbers
runWith(bool speculative, int runs)
{
    mem::MachineConfig config;
    config.engine.seed = 42;
    config.mem.meeSpeculativeLoading = speculative;
    mem::Machine machine(config);
    sgx::SgxPlatform platform(machine);

    Numbers n;
    machine.engine().spawn("driver", 0, [&] {
        auto overhead = [&](std::uint64_t bytes) {
            mem::Buffer enc(machine, mem::Domain::Epc, bytes);
            mem::Buffer plain(machine, mem::Domain::Untrusted,
                              bytes);
            SampleSet e, p;
            for (int i = 0; i < runs; ++i) {
                enc.evict();
                e.add(static_cast<double>(machine.memory().readBuffer(
                    enc.addr(), bytes)));
                plain.evict();
                p.add(static_cast<double>(
                    machine.memory().readBuffer(plain.addr(),
                                                bytes)));
            }
            return (e.median() - p.median()) / p.median() * 100.0;
        };
        n.read2k = overhead(2048);
        n.read32k = overhead(32768);

        workloads::SpecConfig spec;
        spec.mcfBytes = 16_MiB;
        spec.mcfSteps = 250 * runs;
        spec.libqBytes = 96_MiB;
        spec.libqSweeps = 2;
        machine.memory().evictAll();
        const Cycles mcf_e =
            workloads::runMcf(machine, mem::Domain::Epc, spec);
        machine.memory().evictAll();
        const Cycles mcf_p =
            workloads::runMcf(machine, mem::Domain::Untrusted, spec);
        n.mcf = static_cast<double>(mcf_e) /
                static_cast<double>(mcf_p);
        machine.memory().evictAll();
        const Cycles lq_e =
            workloads::runLibquantum(machine, mem::Domain::Epc, spec);
        machine.memory().evictAll();
        const Cycles lq_p = workloads::runLibquantum(
            machine, mem::Domain::Untrusted, spec);
        n.libq = static_cast<double>(lq_e) /
                 static_cast<double>(lq_p);
    });
    machine.engine().run();
    return n;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int runs = 400;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            runs = std::atoi(argv[i] + 7);
    }
    std::printf("Extension ablation: PoisonIvy-style speculative "
                "MEE loading (paper §6.2's pointer to [22])\n\n");
    const Numbers base = runWith(false, runs);
    const Numbers spec = runWith(true, runs);

    TextTable table({"metric", "baseline MEE", "speculative MEE"});
    table.addRow({"2 KiB read overhead",
                  TextTable::num(base.read2k, 1) + "%",
                  TextTable::num(spec.read2k, 1) + "%"});
    table.addRow({"32 KiB read overhead",
                  TextTable::num(base.read32k, 1) + "%",
                  TextTable::num(spec.read32k, 1) + "%"});
    table.addRow({"mcf (enc/plain)",
                  TextTable::num(base.mcf, 2) + "x",
                  TextTable::num(spec.mcf, 2) + "x"});
    table.addRow({"libquantum (enc/plain)",
                  TextTable::num(base.libq, 2) + "x",
                  TextTable::num(spec.libq, 2) + "x"});
    table.print();
    std::printf("\nspeculation hides most of the decrypt+verify "
                "latency on reads; libquantum stays\nslow because "
                "its cliff is EPC *paging*, which speculation does "
                "not address\n");
    return 0;
}
