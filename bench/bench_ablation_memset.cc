/**
 * @file
 * Ablation (paper §3.5 "Further optimizations"): the SDK's byte-wise
 * memset vs a word-wise implementation, across buffer sizes, for the
 * `out` transfer of both ecalls and ocalls. The paper blames the
 * byte-wise memset for most of the `out` option's penalty and
 * suggests Intel adopt an optimized version.
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

double
medianOutCall(TestBed &bed, bool ecall, std::uint64_t size,
              const measure::MeasureConfig &config)
{
    auto &machine = *bed.machine;
    auto &rt = *bed.runtime;
    double median = 0;
    machine.engine().spawn("driver", 0, [&] {
        if (ecall) {
            mem::Buffer buf(machine, mem::Domain::Untrusted, size);
            const edl::Args args = {edl::Arg::buffer(buf),
                                    edl::Arg::value(size)};
            median = measure::measureOp(
                         *bed.platform,
                         [&] { rt.ecall("ecall_buf_out", args); },
                         config)
                         .samples.median();
        } else {
            mem::Buffer buf(machine, mem::Domain::Epc, size);
            const edl::Args args = {edl::Arg::buffer(buf),
                                    edl::Arg::value(size)};
            bed.runInEnclave([&] {
                median =
                    measure::measureOracleOp(
                        *bed.platform,
                        [&] { rt.ocall("ocall_buf_from", args); },
                        config)
                        .samples.median();
            });
        }
    });
    machine.engine().run();
    return median;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 2'000);
    std::printf("Ablation: byte-wise vs word-wise memset in `out` "
                "transfers\n");

    TextTable table({"Buffer", "direction", "byte-wise memset",
                     "word-wise memset", "saved"});
    for (std::uint64_t size : {1024ull, 2048ull, 4096ull, 8192ull}) {
        for (bool ecall : {true, false}) {
            TestBed bytewise(false);
            edl::MarshalOptions word_options;
            word_options.wordWiseMemset = true;
            TestBed wordwise(false, word_options);
            const double slow =
                medianOutCall(bytewise, ecall, size, config);
            const double fast =
                medianOutCall(wordwise, ecall, size, config);
            table.addRow({std::to_string(size) + " B",
                          ecall ? "ecall out" : "ocall from",
                          TextTable::cycles(slow),
                          TextTable::cycles(fast),
                          TextTable::cycles(slow - fast)});
        }
    }
    table.print();
    std::printf("the larger the buffer, the more the SDK's "
                "byte-wise memset dominates the call\n");
    return 0;
}
