/**
 * @file
 * Shared harness for the application experiments (Table 2, Figures
 * 10 and 11): builds the paper's testbed for one application in one
 * configuration, runs warmup + a measured window, and reports
 * throughput, latency, and per-call rates.
 *
 * Configurations map to the paper's bars:
 *   native          - the unmodified application
 *   sgx             - straightforward port, SDK ecalls/ocalls
 *   sgx+hotcalls    - HotCalls for the app's frequent calls
 *   sgx+hotcalls+nrz- additionally No-Redundant-Zeroing
 */

#ifndef HC_BENCH_APP_BENCH_HH
#define HC_BENCH_APP_BENCH_HH

#include <map>
#include <string>

#include "port/port.hh"

namespace hc::bench {

/** One application-run configuration. */
struct AppRunConfig {
    port::Mode mode = port::Mode::Native;
    bool noRedundantZeroing = false;
    /** FastPath data plane for the hot channels (0/1, forwarded to
     *  PortConfig). Defaults to 0 — the paper bars measure the legacy
     *  data plane and stay bit-identical regardless of HC_FASTPATH. */
    int fastPath = 0;
    double warmupSec = 0.04;
    double measureSec = 0.25;
    std::uint64_t seed = 7;
};

/** Results of one application run. */
struct AppRunResult {
    /** requests/s (KvCache, Httpd) or Mbit/s (Vpn iperf). */
    double throughput = 0;
    /** Mean response latency / ping RTT, in milliseconds. */
    double latencyMs = 0;
    /** API calls per second by name (Table 2). */
    std::map<std::string, double> callRatesPerSec;
    /** Sum of the above. */
    double totalCallsPerSec = 0;
    /** Responses failing end-to-end payload verification. */
    std::uint64_t integrityErrors = 0;
};

/** The four standard configurations, in paper order. */
std::vector<AppRunConfig> standardConfigs(double measure_sec = 0.25);

/** The beyond-paper bar: sgx+hotcalls+nrz with the FastPath data
 *  plane (staging arenas + inline payloads + cached call plans). */
AppRunConfig fastPathConfig(double measure_sec = 0.25);

/** Label for a configuration. */
std::string configLabel(const AppRunConfig &config);

/** memcached-like KV store under memtier (throughput: req/s). */
AppRunResult runKvCache(const AppRunConfig &config);

/** lighttpd-like web server under http_load (throughput: pages/s). */
AppRunResult runHttpd(const AppRunConfig &config);

/** openVPN-like tunnel under iperf (throughput: Mbit/s). */
AppRunResult runVpnIperf(const AppRunConfig &config);

/** openVPN-like tunnel under flood ping (latencyMs: mean RTT). */
AppRunResult runVpnPing(const AppRunConfig &config);

} // namespace hc::bench

#endif // HC_BENCH_APP_BENCH_HH
