/**
 * @file
 * Ablation (paper §4.2 "Preventing starvation" / "Maximizing
 * utilization"): the timeout fallback under responder oversleep.
 *
 * The paper sets the timeout to 10 attempts and reports it never
 * expired for its applications — but that holds only while the
 * responder actually polls. This ablation uses the FaultLine injector
 * (src/fault) to sweep *oversleep distributions*: the responder's
 * poll loop stalls for exponentially distributed delays at a given
 * per-poll probability, and the table reports how many calls ride the
 * hot channel vs fall back to the SDK path, how many individual
 * attempts expired, and the mean latency — for several timeout
 * budgets. The quiet plan reproduces the paper's observation (the
 * timeout never expires); heavier stall distributions show a small
 * timeout shedding load to the SDK path, trading per-call latency for
 * bounded worst-case wait.
 */

#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"
#include "fault/fault.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct Result {
    std::uint64_t calls = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t timeoutAttempts = 0;
    double meanLatency = 0;
};

/** One sweep point: a single requester against a responder whose
 *  poll loop oversleeps per @p plan. */
Result
runOversleep(const fault::FaultPlan &plan, int timeout_tries,
             int calls)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &machine = *bed.machine;
    auto &engine = machine.engine();

    fault::FaultInjector injector(engine, plan);
    machine.installFault(&injector);

    hotcalls::HotCallConfig config;
    config.timeoutTries = timeout_tries;
    hotcalls::HotCallService hot(*bed.runtime,
                                 hotcalls::Kind::HotEcall, 1, config);
    hot.start();

    const int id = bed.runtime->ecallId("ecall_empty");
    SampleSet latencies;
    engine.spawn("req", 2, [&] {
        for (int i = 0; i < calls; ++i) {
            const Cycles t0 = machine.now();
            hot.call(id, {});
            latencies.add(static_cast<double>(machine.now() - t0));
        }
        hot.stop();
        engine.stop();
    });
    engine.run();

    Result result;
    result.calls = hot.stats().calls;
    result.fallbacks = hot.stats().fallbacks;
    result.timeoutAttempts = hot.stats().timeoutAttempts;
    result.meanLatency = latencies.mean();
    machine.installFault(nullptr);
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int calls = 500;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            calls = std::atoi(argv[i] + 7);
    }
    if (calls < 1)
        calls = 1;
    std::printf("Ablation: HotCall timeout fallback under responder "
                "oversleep\n");
    std::printf("(FaultLine plans stall the responder poll loop; one "
                "requester, %d calls)\n\n", calls);

    struct Sweep {
        Cycles mean;        //!< exponential stall mean (0 = quiet)
        double probability; //!< per-poll fire chance
    };
    const Sweep sweeps[] = {
        {0, 0.0},       {2'000, 0.05},  {10'000, 0.05},
        {40'000, 0.05}, {10'000, 0.25},
    };

    TextTable table({"stall mean", "fire %", "timeout tries",
                     "hot calls", "fallbacks", "fallback %",
                     "timeout attempts", "mean latency"});
    std::uint64_t seed = 1100;
    for (const Sweep &sweep : sweeps) {
        for (int tries : {2, 10, 50}) {
            const fault::FaultPlan plan =
                sweep.mean == 0
                    ? fault::FaultPlan::quiet(++seed)
                    : fault::FaultPlan::oversleep(++seed, sweep.mean,
                                                  sweep.probability);
            const Result r = runOversleep(plan, tries, calls);
            const double total =
                static_cast<double>(r.calls + r.fallbacks);
            table.addRow(
                {sweep.mean == 0
                     ? "quiet"
                     : TextTable::cycles(
                           static_cast<double>(sweep.mean)),
                 TextTable::num(sweep.probability * 100, 0) + "%",
                 std::to_string(tries), std::to_string(r.calls),
                 std::to_string(r.fallbacks),
                 total > 0
                     ? TextTable::num(
                           static_cast<double>(r.fallbacks) / total *
                               100,
                           1) +
                           "%"
                     : "-",
                 std::to_string(r.timeoutAttempts),
                 TextTable::cycles(r.meanLatency)});
        }
    }
    table.print();
    std::printf("\nwith a quiet plan the paper's 10-attempt budget "
                "never falls back (its\nobservation; only sleep/wake "
                "transitions cost attempts); injected oversleep\n"
                "plus a small budget sheds load to the SDK path, "
                "trading per-call latency for\nbounded worst-case "
                "wait\n");
    return 0;
}
