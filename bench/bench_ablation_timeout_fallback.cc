/**
 * @file
 * Ablation (paper §4.2 "Preventing starvation" / "Maximizing
 * utilization"): timeout budgets and Sentinel quarantine under
 * responder oversleep.
 *
 * The paper sets the timeout to 10 attempts and reports it never
 * expired for its applications — but that holds only while the
 * responder actually polls. This ablation uses the FaultLine injector
 * (src/fault) to stall the responder's poll loop and compares the
 * recovery policies layered on the paper's design:
 *
 *  - fixed budgets (the paper's mechanism, swept at 2/10/50 attempts,
 *    Sentinel off),
 *  - fixed budget + quarantine (Sentinel on, adaptation clamped away
 *    by maxTimeoutTries = timeoutTries),
 *  - adaptive budget without quarantine (Sentinel on, the streak
 *    threshold pushed out of reach),
 *  - the full Sentinel (adaptive budget + quarantine + probes).
 *
 * The final section kills the responder outright (ResponderNeverWake,
 * respawn disabled) and measures the steady-state cycles-per-call on
 * the dead channel: the fixed-timeout baseline burns its full spin
 * budget on every call forever, while a quarantined channel sheds
 * straight to the SDK path. The bench self-checks the headline claim
 * (SELF-CHECK line, non-zero exit on failure): steady-state overhead
 * above the raw SDK floor must be at least 5x lower with quarantine.
 *
 * Pass --json for machine-readable output (one object per row plus
 * the self-check verdict), --runs=N to scale the per-point call count.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "fault/fault.hh"

using namespace hc;
using namespace hc::bench;

namespace {

/** How the channel defends itself at one sweep point. */
struct Policy {
    const char *name;
    int timeoutTries;   //!< fixed budget / adaptive floor
    bool adaptive;      //!< widen the budget from the latency EWMA
    bool quarantine;    //!< shed to the SDK after a fallback streak
};

struct Result {
    std::uint64_t calls = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t timeoutAttempts = 0;
    std::uint64_t sheds = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t restores = 0;
    double meanLatency = 0;
    double tailLatency = 0; //!< mean over the steady-state tail
};

/** Calls to drop from the front of the tail mean: quarantine entry
 *  (the K-fallback streak) is a transient, the interesting number is
 *  the per-call cost after the channel settled. */
constexpr int kWarmup = 60;

/** One sweep point: a single requester against a responder whose
 *  poll loop stalls per @p plan, defended per @p policy. */
Result
runPoint(const fault::FaultPlan &plan, const Policy &policy, int calls)
{
    TestBed bed(/*with_interrupts=*/false, {}, /*seed=*/42,
                [&](mem::MachineConfig &mc) {
                    mc.guard.mode =
                        (policy.adaptive || policy.quarantine) ? 1 : 0;
                    if (!policy.quarantine) {
                        // Push the streak threshold out of reach: the
                        // budget adapts but the channel never degrades.
                        mc.guard.quarantineAfter = 1 << 30;
                    }
                    // Steady-state economics, not healing: a respawned
                    // responder would revive the dead channel and the
                    // comparison below would measure recovery instead.
                    mc.guard.respawn = false;
                });
    auto &machine = *bed.machine;
    auto &engine = machine.engine();

    fault::FaultInjector injector(engine, plan);
    machine.installFault(&injector);

    hotcalls::HotCallConfig config;
    config.timeout.timeoutTries = policy.timeoutTries;
    if (!policy.adaptive)
        config.timeout.maxTimeoutTries = policy.timeoutTries;
    hotcalls::HotCallService hot(*bed.runtime,
                                 hotcalls::Kind::HotEcall, 1, config);
    hot.start();

    const int id = bed.runtime->ecallId("ecall_empty");
    SampleSet latencies;
    SampleSet tail;
    engine.spawn("req", 2, [&] {
        for (int i = 0; i < calls; ++i) {
            const Cycles t0 = machine.now();
            hot.call(id, {});
            const double d = static_cast<double>(machine.now() - t0);
            latencies.add(d);
            if (i >= kWarmup)
                tail.add(d);
        }
        hot.stop();
        engine.stop();
    });
    engine.run();
    engine.unwindStranded();

    Result result;
    result.calls = hot.stats().calls;
    result.fallbacks = hot.stats().fallbacks;
    result.timeoutAttempts = hot.stats().timeoutAttempts;
    if (const auto *g = hot.guard()) {
        result.sheds = g->stats().sheds;
        result.quarantines = g->stats().quarantines;
        result.restores = g->stats().restores;
    }
    result.meanLatency = latencies.mean();
    result.tailLatency = tail.mean();
    machine.installFault(nullptr);
    return result;
}

/** Raw SDK floor: the same calls with no channel at all. */
double
runSdkBaseline(int calls)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &machine = *bed.machine;
    auto &engine = machine.engine();
    SampleSet tail;
    engine.spawn("req", 2, [&] {
        for (int i = 0; i < calls; ++i) {
            const Cycles t0 = machine.now();
            bed.runtime->ecall("ecall_empty", {});
            if (i >= kWarmup)
                tail.add(static_cast<double>(machine.now() - t0));
        }
        engine.stop();
    });
    engine.run();
    return tail.mean();
}

std::string
jsonRow(const char *plan_name, Cycles stall_mean, double fire_pct,
        const Policy &policy, const Result &r)
{
    std::string out = "{\"plan\":\"";
    out += plan_name;
    out += "\",\"stall_mean\":" + std::to_string(stall_mean);
    out += ",\"fire_pct\":" + std::to_string(fire_pct);
    out += ",\"policy\":\"";
    out += policy.name;
    out += "\",\"timeout_tries\":" + std::to_string(policy.timeoutTries);
    out += std::string(",\"adaptive\":") +
           (policy.adaptive ? "true" : "false");
    out += std::string(",\"quarantine\":") +
           (policy.quarantine ? "true" : "false");
    out += ",\"hot_calls\":" + std::to_string(r.calls);
    out += ",\"fallbacks\":" + std::to_string(r.fallbacks);
    out += ",\"timeout_attempts\":" + std::to_string(r.timeoutAttempts);
    out += ",\"sheds\":" + std::to_string(r.sheds);
    out += ",\"quarantines\":" + std::to_string(r.quarantines);
    out += ",\"restores\":" + std::to_string(r.restores);
    out += ",\"mean_latency\":" + std::to_string(r.meanLatency);
    out += ",\"tail_latency\":" + std::to_string(r.tailLatency);
    out += "}";
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int calls = 500;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            calls = std::atoi(argv[i] + 7);
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    }
    if (calls < kWarmup + 50)
        calls = kWarmup + 50;

    const Policy policies[] = {
        {"fixed-2", 2, false, false},
        {"fixed-10", 10, false, false},
        {"fixed-50", 50, false, false},
        {"fixed-10+quar", 10, false, true},
        {"adaptive", 10, true, false},
        {"sentinel", 10, true, true},
    };

    struct Sweep {
        const char *name;
        Cycles mean;        //!< exponential stall mean (0 = quiet)
        double probability; //!< per-poll fire chance
    };
    const Sweep sweeps[] = {
        {"quiet", 0, 0.0},
        {"light", 10'000, 0.05},
        {"heavy", 40'000, 0.25},
    };

    std::vector<std::string> rows;
    if (!json) {
        std::printf("Ablation: timeout budgets and quarantine under "
                    "responder oversleep\n");
        std::printf("(FaultLine stalls the responder poll loop; one "
                    "requester, %d calls/point)\n\n", calls);
    }

    TextTable table({"plan", "policy", "hot calls", "fallbacks",
                     "timeout attempts", "sheds", "quar", "restores",
                     "mean latency", "tail latency"});
    std::uint64_t seed = 1100;
    for (const Sweep &sweep : sweeps) {
        for (const Policy &policy : policies) {
            const fault::FaultPlan plan =
                sweep.mean == 0
                    ? fault::FaultPlan::quiet(++seed)
                    : fault::FaultPlan::oversleep(++seed, sweep.mean,
                                                  sweep.probability);
            const Result r = runPoint(plan, policy, calls);
            rows.push_back(jsonRow(sweep.name, sweep.mean,
                                   sweep.probability * 100, policy, r));
            table.addRow({sweep.name, policy.name,
                          std::to_string(r.calls),
                          std::to_string(r.fallbacks),
                          std::to_string(r.timeoutAttempts),
                          std::to_string(r.sheds),
                          std::to_string(r.quarantines),
                          std::to_string(r.restores),
                          TextTable::cycles(r.meanLatency),
                          TextTable::cycles(r.tailLatency)});
        }
    }

    // ------------------------------------------------------------------
    // Dead channel: the responder never wakes and is never respawned.
    // Pre-Sentinel (guard off) the first published request is never
    // served and the requester waits forever — the paper's budget
    // only covers *claiming* the channel — so that baseline wedges
    // until the FaultLine backstop aborts the run. With the guard on
    // but quarantine out of reach, every call pays the full timeout
    // dance (spin budget, unserved-deadline wait, abandon, SDK
    // reissue). Quarantine pays that O(K) times total and sheds the
    // rest straight to the SDK path at (near) zero channel cost.
    // ------------------------------------------------------------------

    const double sdk_floor = runSdkBaseline(calls);
    const Policy fixed10 = {"fixed-10 (wedges)", 10, false, false};
    const Policy timeouts = {"per-call timeouts", 10, true, false};
    const Policy sentinel = {"sentinel", 10, true, true};
    // Short backstop for the wedged baseline: the point is *that* it
    // wedges, no need to simulate two billion idle cycles.
    const Result r_wedge = runPoint(
        fault::FaultPlan::neverWake(4242, 0, 20'000'000), fixed10,
        calls);
    const fault::FaultPlan dead =
        fault::FaultPlan::neverWake(4242, 0, 2'000'000'000);
    const Result r_timeo = runPoint(dead, timeouts, calls);
    const Result r_guard = runPoint(dead, sentinel, calls);

    const double over_timeo = r_timeo.tailLatency - sdk_floor;
    const double over_guard = r_guard.tailLatency - sdk_floor;
    // Floor the quarantined overhead at one cycle so a sub-cycle (or
    // measurement-noise negative) denominator cannot inflate the
    // ratio into nonsense.
    const double ratio =
        over_timeo / (over_guard > 1.0 ? over_guard : 1.0);
    const bool ok = over_timeo > 0 && ratio >= 5.0;

    for (const auto &pair :
         {std::make_pair(&fixed10, &r_wedge),
          std::make_pair(&timeouts, &r_timeo),
          std::make_pair(&sentinel, &r_guard)}) {
        const Policy &p = *pair.first;
        const Result &r = *pair.second;
        table.addRow({"dead", p.name, std::to_string(r.calls),
                      std::to_string(r.fallbacks),
                      std::to_string(r.timeoutAttempts),
                      std::to_string(r.sheds),
                      std::to_string(r.quarantines),
                      std::to_string(r.restores),
                      TextTable::cycles(r.meanLatency),
                      TextTable::cycles(r.tailLatency)});
        rows.push_back(jsonRow("dead", 0, 0, p, r));
    }

    if (json) {
        std::printf("[\n");
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::printf("  %s%s\n", rows[i].c_str(),
                        i + 1 < rows.size() ? "," : ",");
        std::printf(
            "  {\"self_check\":\"dead_channel_overhead\","
            "\"sdk_floor\":%.1f,\"overhead_per_call_timeouts\":%.1f,"
            "\"overhead_sentinel\":%.1f,\"ratio\":%.1f,"
            "\"pass\":%s}\n]\n",
            sdk_floor, over_timeo, over_guard, ratio,
            ok ? "true" : "false");
    } else {
        table.print();
        std::printf("\nwith a quiet plan the paper's 10-attempt budget "
                    "never falls back (its\nobservation); oversleep "
                    "shows the trade: small fixed budgets shed load "
                    "early,\nlarge ones ride out stalls at spin cost, "
                    "the adaptive budget widens only under\ndistress, "
                    "and quarantine caps the dead-channel bill at O(K) "
                    "timeouts total\n");
        std::printf("\ndead channel: guard-off wedges on the first "
                    "unserved request (aborted by\nthe backstop after "
                    "%s cycles); steady-state cycles/call above the "
                    "%.0f-cycle\nSDK floor: per-call timeouts burn "
                    "%.0f, sentinel %.0f -> %.1fx cheaper\n",
                    TextTable::cycles(r_wedge.meanLatency).c_str(),
                    sdk_floor, over_timeo, over_guard, ratio);
        std::printf("SELF-CHECK %s: quarantined calls %s at least 5x "
                    "cheaper than the fixed\ntimeout on a dead "
                    "channel\n",
                    ok ? "PASSED" : "FAILED", ok ? "are" : "are NOT");
    }
    return ok ? 0 : 1;
}
