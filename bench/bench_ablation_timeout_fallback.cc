/**
 * @file
 * Ablation (paper §4.2 "Preventing starvation" / "Maximizing
 * utilization"): several requesters sharing one HotCall responder.
 * Sweeps the timeout (attempts before falling back to the SDK path)
 * and the requester count, reporting completed HotCalls, fallback
 * rate, and mean latency. The paper sets the timeout to 10 and
 * reports it never expired for its (single-requester-per-channel)
 * applications; under deliberate oversubscription the fallback is
 * what keeps worst-case latency bounded.
 */

#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct Result {
    std::uint64_t calls = 0;
    std::uint64_t fallbacks = 0;
    double meanLatency = 0;
};

Result
runContention(int requesters, int timeout_tries, Cycles work_cycles,
              int calls)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &machine = *bed.machine;
    auto &engine = machine.engine();
    auto &rt = *bed.runtime;

    // An ecall with some service time, so the responder saturates.
    rt.registerEcall("ecall_run_bench", [&](edl::StagedCall &) {
        engine.advance(work_cycles);
    });

    hotcalls::HotCallConfig config;
    config.timeoutTries = timeout_tries;
    hotcalls::HotCallService hot(rt, hotcalls::Kind::HotEcall, 1,
                                 config);
    hot.start();

    const int id = rt.ecallId("ecall_run_bench");
    SampleSet latencies;
    int done = 0;
    for (int r = 0; r < requesters; ++r) {
        engine.spawn("req" + std::to_string(r), 2 + r, [&, r] {
            (void)r;
            for (int i = 0; i < calls; ++i) {
                const Cycles t0 = machine.now();
                hot.call(id, {edl::Arg::value(0)});
                latencies.add(
                    static_cast<double>(machine.now() - t0));
            }
            if (++done == requesters) {
                hot.stop();
                engine.stop();
            }
        });
    }
    engine.run();

    Result result;
    result.calls = hot.stats().calls;
    result.fallbacks = hot.stats().fallbacks;
    result.meanLatency = latencies.mean();
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int calls = 500;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            calls = std::atoi(argv[i] + 7);
    }
    std::printf("Ablation: HotCall timeout fallback under responder "
                "contention\n");
    std::printf("(each requester issues %d calls of ~2k cycles "
                "service time)\n\n", calls);

    TextTable table({"requesters", "timeout tries", "hot calls",
                     "fallbacks", "fallback %", "mean latency"});
    for (int requesters : {1, 2, 4, 6}) {
        for (int tries : {2, 10, 50}) {
            const Result r =
                runContention(requesters, tries, 2'000, calls);
            const double total =
                static_cast<double>(r.calls + r.fallbacks);
            table.addRow(
                {std::to_string(requesters), std::to_string(tries),
                 std::to_string(r.calls),
                 std::to_string(r.fallbacks),
                 TextTable::num(
                     static_cast<double>(r.fallbacks) / total * 100,
                     1) +
                     "%",
                 TextTable::cycles(r.meanLatency)});
        }
    }
    table.print();
    std::printf("\nwith one requester the timeout never expires "
                "(paper's observation); under\noversubscription a "
                "small timeout sheds load to the SDK path, trading "
                "per-call\nlatency for bounded worst-case wait\n");
    return 0;
}
