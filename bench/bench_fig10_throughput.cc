/**
 * @file
 * Reproduces Figure 10: application throughput of memcached, openVPN
 * and lighttpd, normalized to non-SGX execution, in four
 * configurations (native, straightforward SGX port, +HotCalls,
 * +No-Redundant-Zeroing).
 *
 * Paper absolute anchors:
 *   memcached: 316,500 -> 66,500 -> 162,000 -> 185,000 req/s
 *   openVPN:       866 ->    309 ->     694 ->     823 Mbit/s
 *   lighttpd:   53,400 -> 12,100 ->  40,400 ->  44,800 pages/s
 */

#include <cstring>

#include "bench/app_bench.hh"
#include "support/table.hh"

using namespace hc;
using namespace hc::bench;

namespace {

struct AppSpec {
    const char *name;
    const char *unit;
    AppRunResult (*run)(const AppRunConfig &);
    double paper[4];
};

double
parseMeasureSec(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            return std::atof(argv[i] + 10);
    return 0.25;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const double seconds = parseMeasureSec(argc, argv);
    const AppSpec apps[] = {
        {"memcached", "req/s", &runKvCache,
         {316'500, 66'500, 162'000, 185'000}},
        {"openVPN", "Mbit/s", &runVpnIperf, {866, 309, 694, 823}},
        {"lighttpd", "pages/s", &runHttpd,
         {53'400, 12'100, 40'400, 44'800}},
    };

    std::printf("Figure 10: throughput with HotCalls and "
                "No-Redundant-Zeroing (measure window %.2fs)\n",
                seconds);
    auto configs = standardConfigs(seconds);
    // Beyond-paper bar: the FastPath data plane on top of +nrz
    // (no paper anchor; reported against our own native run).
    configs.push_back(fastPathConfig(seconds));

    for (const auto &app : apps) {
        double native = 0;
        double paper_native = app.paper[0];
        TextTable table({"config", std::string("measured ") + app.unit,
                         "normalized", "paper", "paper normalized"});
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const AppRunResult result = app.run(configs[i]);
            if (i == 0)
                native = result.throughput;
            const bool in_paper = i < 4;
            table.addRow(
                {configLabel(configs[i]),
                 TextTable::num(result.throughput, 0),
                 TextTable::num(result.throughput / native * 100, 1) +
                     "%",
                 in_paper ? TextTable::num(app.paper[i], 0) : "-",
                 in_paper ? TextTable::num(app.paper[i] /
                                               paper_native * 100,
                                           1) +
                                "%"
                          : "-"});
            if (result.integrityErrors > 0) {
                std::printf("WARNING: %llu integrity errors in %s\n",
                            static_cast<unsigned long long>(
                                result.integrityErrors),
                            app.name);
            }
        }
        std::printf("\n%s:\n", app.name);
        table.print();
    }
    return 0;
}
