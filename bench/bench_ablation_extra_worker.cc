/**
 * @file
 * Ablation (paper §4.4 "Implications of Using an Additional Core"):
 * HotCalls dedicate logical cores to responder threads; the obvious
 * alternative is to give the application an extra worker thread
 * instead. The paper argues the extra worker can at most double
 * throughput, so HotCalls win whenever they deliver more than 2x —
 * which they do for the SGX memcached. This bench runs that exact
 * comparison.
 */

#include <cstring>

#include "apps/kvcache.hh"
#include "bench/bench_common.hh"
#include "workloads/memtier.hh"

using namespace hc;
using namespace hc::bench;

namespace {

double
runKv(port::Mode mode, int workers, double seconds)
{
    mem::MachineConfig machine_config;
    machine_config.engine.numCores = 8;
    machine_config.engine.seed = 7;
    machine_config.engine.interruptMeanCycles = 7'000'000;
    mem::Machine machine(machine_config);
    sgx::SgxPlatform platform(machine);
    platform.installAexHandler();
    os::Kernel kernel(machine);

    port::PortConfig port_config;
    port_config.mode = mode;
    port_config.hotEcallCore = 2;
    port_config.hotOcallCore = 3;
    port_config.hotOcalls = {"ocall_read", "ocall_sendmsg"};
    port::PortedApp app(platform, kernel, "memcached", port_config);

    apps::KvCacheConfig server_config;
    server_config.numWorkers = workers;
    apps::KvCacheServer server(app, server_config);
    workloads::MemtierClient client(kernel, server.listenPort());

    double throughput = 0;
    auto &engine = machine.engine();
    engine.spawn("driver", 7, [&] {
        app.startHotCalls();
        server.start(0); // workers on cores 0, 1, ...
        client.start(4);
        engine.sleepFor(secondsToCycles(0.04));
        const auto done0 = client.completed();
        const Cycles t0 = machine.now();
        engine.sleepFor(secondsToCycles(seconds));
        throughput = static_cast<double>(client.completed() - done0) /
                     cyclesToSeconds(machine.now() - t0);
        client.stop();
        server.stop();
        app.stopHotCalls();
        engine.stop();
    });
    engine.run();
    return throughput;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double seconds = 0.15;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::atof(argv[i] + 10);

    std::printf("Ablation: spend extra logical cores on worker "
                "threads or on HotCalls responders?\n"
                "(SGX memcached under memtier; paper §4.4)\n\n");

    const double sgx1 = runKv(port::Mode::Sgx, 1, seconds);
    const double sgx2 = runKv(port::Mode::Sgx, 2, seconds);
    const double sgx3 = runKv(port::Mode::Sgx, 3, seconds);
    const double hot1 = runKv(port::Mode::SgxHotCalls, 1, seconds);

    TextTable table({"configuration", "cores used", "req/s",
                     "vs 1-worker SGX"});
    auto row = [&](const char *label, const char *cores, double v) {
        char rel[32];
        std::snprintf(rel, sizeof(rel), "%.2fx", v / sgx1);
        table.addRow({label, cores, TextTable::num(v, 0), rel});
    };
    row("SGX, 1 worker (baseline)", "1", sgx1);
    row("SGX, 2 workers", "2", sgx2);
    row("SGX, 3 workers", "3", sgx3);
    row("SGX, 1 worker + HotCalls", "3 (1+2 responders)", hot1);
    table.print();

    std::printf("\npaper's argument: one extra worker can at most "
                "double throughput; HotCalls gave\nmemcached 2.4x, "
                "so dedicating the core to a responder wins. Note "
                "this simulated\nstore has no global cache lock, so "
                "worker counts beyond the paper's comparison\nscale "
                "more ideally than 1.4-era memcached would.\n");
    return 0;
}
