/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Each bench binary reconstructs one table or figure of the paper.
 * This header provides the simulated test machine (the paper's
 * i7-6700K: 8 logical cores at 4 GHz, 8 MiB LLC, 93 MiB EPC), the
 * microbenchmark EDL, and small reporting helpers. Pass --runs=N to
 * scale the per-batch run count (paper default: 10 x 20,000).
 */

#ifndef HC_BENCH_BENCH_COMMON_HH
#define HC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "hotcalls/hotcall.hh"
#include "measure/measure.hh"
#include "mem/buffer.hh"
#include "mem/machine.hh"
#include "sdk/runtime.hh"
#include "sgx/platform.hh"
#include "support/table.hh"

namespace hc::bench {

/** EDL used by the microbenchmark suite (Table 1, Figs 2-5). */
inline const char *kMicrobenchEdl = R"EDL(
enclave {
    trusted {
        public void ecall_empty();
        public void ecall_buf_in([in, size=len] uint8_t* buf,
                                 size_t len);
        public void ecall_buf_out([out, size=len] uint8_t* buf,
                                  size_t len);
        public void ecall_buf_inout([in, out, size=len] uint8_t* buf,
                                    size_t len);
        public void ecall_run_bench(uint64_t which);
    };
    untrusted {
        void ocall_empty();
        void ocall_buf_to([in, size=len] uint8_t* buf, size_t len);
        void ocall_buf_from([out, size=len] uint8_t* buf, size_t len);
        void ocall_buf_tofrom([in, out, size=len] uint8_t* buf,
                              size_t len);
    };
};
)EDL";

/** The simulated paper machine plus a microbenchmark enclave. */
struct TestBed {
    std::unique_ptr<mem::Machine> machine;
    std::unique_ptr<sgx::SgxPlatform> platform;
    std::unique_ptr<sdk::EnclaveRuntime> runtime;
    /** Body invoked inside the enclave by ecall_run_bench. */
    std::function<void()> inEnclaveBody;

    /**
     * @param with_interrupts  arm the OS-timer/AEX model
     * @param options          marshalling options
     * @param seed             engine RNG seed
     * @param tweak            last-word edit of the MachineConfig
     *                         (ablations pinning Sentinel/SimCheck)
     */
    explicit TestBed(
        bool with_interrupts = true, edl::MarshalOptions options = {},
        std::uint64_t seed = 42,
        const std::function<void(mem::MachineConfig &)> &tweak = {})
    {
        mem::MachineConfig config;
        config.engine.numCores = 8;
        config.engine.seed = seed;
        // One OS tick every ~7M cycles reproduces the paper's ~200-300
        // AEX events per 200,000 enclave-bound measurements.
        config.engine.interruptMeanCycles =
            with_interrupts ? 7'000'000 : 0;
        if (tweak)
            tweak(config);
        machine = std::make_unique<mem::Machine>(config);
        platform = std::make_unique<sgx::SgxPlatform>(*machine);
        platform->installAexHandler();
        runtime = std::make_unique<sdk::EnclaveRuntime>(
            *platform, "microbench", kMicrobenchEdl, 4, options);

        runtime->registerEcall("ecall_empty",
                               [](edl::StagedCall &) {});
        runtime->registerEcall("ecall_buf_in",
                               [](edl::StagedCall &) {});
        runtime->registerEcall("ecall_buf_out",
                               [](edl::StagedCall &) {});
        runtime->registerEcall("ecall_buf_inout",
                               [](edl::StagedCall &) {});
        runtime->registerEcall("ecall_run_bench",
                               [this](edl::StagedCall &) {
                                   if (inEnclaveBody)
                                       inEnclaveBody();
                               });
        runtime->registerOcall("ocall_empty",
                               [](edl::StagedCall &) {});
        runtime->registerOcall("ocall_buf_to",
                               [](edl::StagedCall &) {});
        runtime->registerOcall("ocall_buf_from",
                               [](edl::StagedCall &) {});
        runtime->registerOcall("ocall_buf_tofrom",
                               [](edl::StagedCall &) {});
    }

    /** Run @p body inside the enclave via ecall_run_bench. */
    void runInEnclave(std::function<void()> body)
    {
        inEnclaveBody = std::move(body);
        runtime->ecall("ecall_run_bench", {edl::Arg::value(0)});
        inEnclaveBody = nullptr;
    }
};

/** Parse --runs=N (per batch); defaults to the paper's 20,000. */
inline measure::MeasureConfig
parseMeasureConfig(int argc, char **argv, int default_runs = 20'000)
{
    measure::MeasureConfig config;
    config.runsPerBatch = default_runs;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            config.runsPerBatch = std::atoi(argv[i] + 7);
    }
    if (config.runsPerBatch < 1)
        config.runsPerBatch = 1;
    return config;
}

/** Percent difference of measured vs paper. */
inline std::string
deltaPercent(double measured, double paper)
{
    if (paper == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  (measured - paper) / paper * 100.0);
    return buf;
}

} // namespace hc::bench

#endif // HC_BENCH_BENCH_COMMON_HH
