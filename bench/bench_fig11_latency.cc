/**
 * @file
 * Reproduces Figure 11: application response latency with HotCalls
 * and No-Redundant-Zeroing.
 *
 * Paper anchors (native -> sgx -> +hotcalls -> +nrz):
 *   memcached response: 0.63 -> 2.97 -> 1.23 -> 1.08 ms
 *   openVPN ping RTT:   1.427 -> 4.579 -> 1.873 -> 1.747 ms
 *   lighttpd response:  1.52 -> 8.25 -> 2.40 -> 2.13 ms
 */

#include <cstring>

#include "bench/app_bench.hh"
#include "support/table.hh"

using namespace hc;
using namespace hc::bench;

int
main(int argc, char **argv)
{
    double seconds = 0.25;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::atof(argv[i] + 10);

    struct AppSpec {
        const char *name;
        AppRunResult (*run)(const AppRunConfig &);
        double paper[4];
    };
    const AppSpec apps[] = {
        {"memcached (avg response)", &runKvCache,
         {0.63, 2.97, 1.23, 1.08}},
        {"openVPN (avg ping RTT)", &runVpnPing,
         {1.427, 4.579, 1.873, 1.747}},
        {"lighttpd (avg response)", &runHttpd,
         {1.52, 8.25, 2.40, 2.13}},
    };

    std::printf("Figure 11: latency with HotCalls and "
                "No-Redundant-Zeroing (ms)\n");
    auto configs = standardConfigs(seconds);
    // Beyond-paper bar: the FastPath data plane on top of +nrz.
    configs.push_back(fastPathConfig(seconds));
    for (const auto &app : apps) {
        TextTable table({"config", "measured ms", "paper ms",
                         "reduction vs sgx", "paper reduction"});
        double sgx_latency = 0;
        std::vector<double> measured;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const AppRunResult result = app.run(configs[i]);
            measured.push_back(result.latencyMs);
            if (i == 1)
                sgx_latency = result.latencyMs;
        }
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const bool in_paper = i < 4;
            std::string cut = "-";
            std::string paper_cut = "-";
            if (i >= 2) {
                cut = TextTable::num(
                          (1 - measured[i] / sgx_latency) * 100, 0) +
                      "%";
            }
            if (i >= 2 && in_paper) {
                paper_cut =
                    TextTable::num(
                        (1 - app.paper[i] / app.paper[1]) * 100, 0) +
                    "%";
            }
            table.addRow({configLabel(configs[i]),
                          TextTable::num(measured[i], 3),
                          in_paper ? TextTable::num(app.paper[i], 3)
                                   : "-",
                          cut, paper_cut});
        }
        std::printf("\n%s:\n", app.name);
        table.print();
    }
    return 0;
}
