/**
 * @file
 * Host-side simulator throughput (google-benchmark): how many
 * simulated megacycles the discrete-event stack retires per host
 * second on representative workloads. This is the benchmark the
 * TurboSim fast paths are judged by; the golden-digest harness
 * (tests/test_determinism.cc) guarantees they change none of the
 * simulated outputs.
 *
 * Workloads:
 *  - warm SDK ecall loop: the conventional call path (single fiber,
 *    marshalling + context-line pricing, no interleaving),
 *  - HotCall ping-pong: the Fig 3 single-line channel (two fibers
 *    interleaving at every poll -> fiber-switch bound),
 *  - HotQueue at 4 requesters: the scaled channel (six fibers,
 *    batching responder pool),
 *  - encrypted-buffer sweep: readBuffer/writeBuffer over EPC working
 *    sets (cache + MEE model bound, no fiber switches).
 *
 * Every benchmark reports sim_Mcycles_per_s (simulated Mcycles per
 * host second, the figure of merit) next to google-benchmark's
 * items_per_second (simulated calls or buffer passes).
 */

#include <benchmark/benchmark.h>

#include "hotcalls/hotcall.hh"
#include "hotcalls/hotqueue.hh"
#include "mem/buffer.hh"
#include "mem/machine.hh"
#include "sdk/runtime.hh"
#include "sgx/platform.hh"

using namespace hc;

namespace {

const char *kBenchEdl = R"(
    enclave {
        trusted {
            public uint64_t ecall_add(uint64_t a, uint64_t b);
            public void ecall_empty();
        };
        untrusted { void ocall_empty(); };
    };
)";

/** Machine + microbench enclave (interrupts off: pure throughput). */
struct Bed {
    mem::Machine machine;
    sgx::SgxPlatform platform;
    sdk::EnclaveRuntime runtime;

    Bed()
        : machine([] {
              mem::MachineConfig config;
              config.engine.numCores = 8;
              config.engine.seed = 42;
              return config;
          }()),
          platform(machine), runtime(platform, "simspeed", kBenchEdl, 4)
    {
        runtime.registerEcall("ecall_add", [](edl::StagedCall &c) {
            c.setRetval(c.scalar(0) + c.scalar(1));
        });
        runtime.registerEcall("ecall_empty",
                              [](edl::StagedCall &) {});
        runtime.registerOcall("ocall_empty",
                              [](edl::StagedCall &) {});
    }

    /** Total simulated time retired across every core. */
    Cycles totalSimCycles()
    {
        Cycles total = 0;
        for (int c = 0; c < machine.engine().numCores(); ++c)
            total += machine.engine().coreNow(c);
        return total;
    }
};

void
reportSimRate(benchmark::State &state, double sim_cycles,
              double items)
{
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
    state.counters["sim_Mcycles_per_s"] = benchmark::Counter(
        sim_cycles / 1e6, benchmark::Counter::kIsRate);
}

} // anonymous namespace

static void
BM_SimWarmEcallLoop(benchmark::State &state)
{
    constexpr int kCalls = 1'000;
    double sim_cycles = 0, calls = 0;
    for (auto _ : state) {
        Bed bed;
        bed.machine.engine().spawn("driver", 0, [&] {
            for (int i = 0; i < kCalls; ++i)
                bed.runtime.ecall("ecall_empty", {});
        });
        bed.machine.engine().run();
        sim_cycles += static_cast<double>(bed.totalSimCycles());
        calls += kCalls;
    }
    reportSimRate(state, sim_cycles, calls);
}
BENCHMARK(BM_SimWarmEcallLoop);

static void
BM_SimHotCallPingPong(benchmark::State &state)
{
    constexpr int kCalls = 1'000;
    double sim_cycles = 0, calls = 0;
    for (auto _ : state) {
        Bed bed;
        hotcalls::HotCallService hot(bed.runtime,
                                     hotcalls::Kind::HotEcall, 1);
        auto &engine = bed.machine.engine();
        engine.spawn("driver", 0, [&] {
            hot.start();
            const int id = bed.runtime.ecallId("ecall_empty");
            for (int i = 0; i < kCalls; ++i)
                hot.call(id, {});
            hot.stop();
            engine.stop();
        });
        engine.run();
        sim_cycles += static_cast<double>(bed.totalSimCycles());
        calls += kCalls;
    }
    reportSimRate(state, sim_cycles, calls);
}
BENCHMARK(BM_SimHotCallPingPong);

static void
BM_SimHotQueue4Requesters(benchmark::State &state)
{
    constexpr int kRequesters = 4;
    constexpr int kCallsEach = 250;
    double sim_cycles = 0, calls = 0;
    for (auto _ : state) {
        Bed bed;
        hotcalls::HotQueueConfig config;
        config.numSlots = 8;
        config.responderCores = {1, 2};
        hotcalls::HotQueue hot(bed.runtime,
                               hotcalls::Kind::HotEcall, config);
        auto &engine = bed.machine.engine();
        int done = 0;
        hot.start();
        for (int r = 0; r < kRequesters; ++r) {
            engine.spawn("req" + std::to_string(r), 3 + r, [&] {
                const int id = bed.runtime.ecallId("ecall_empty");
                for (int i = 0; i < kCallsEach; ++i)
                    hot.call(id, {});
                if (++done == kRequesters) {
                    hot.stop();
                    engine.stop();
                }
            });
        }
        engine.run();
        sim_cycles += static_cast<double>(bed.totalSimCycles());
        calls += kRequesters * kCallsEach;
    }
    reportSimRate(state, sim_cycles, calls);
}
BENCHMARK(BM_SimHotQueue4Requesters);

static void
BM_SimEncryptedBufferSweep(benchmark::State &state)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(state.range(0));
    constexpr int kPasses = 50;
    double sim_cycles = 0, passes = 0;
    for (auto _ : state) {
        Bed bed;
        bed.machine.engine().spawn("sweep", 0, [&] {
            mem::Buffer enc(bed.machine, mem::Domain::Epc, bytes);
            mem::Buffer plain(bed.machine, mem::Domain::Untrusted,
                              bytes);
            for (int i = 0; i < kPasses; ++i) {
                enc.read();
                enc.write(i % 8 == 7);
                plain.read();
                plain.write(false);
                if (i % 16 == 15) {
                    bed.machine.memory().evictAll();
                    bed.machine.memory().mee().clearNodeCache();
                }
            }
        });
        bed.machine.engine().run();
        sim_cycles += static_cast<double>(bed.totalSimCycles());
        passes += kPasses;
    }
    reportSimRate(state, sim_cycles, passes);
}
BENCHMARK(BM_SimEncryptedBufferSweep)
    ->Arg(2048)
    ->Arg(32768)
    ->Arg(262144)
    ->Arg(1048576);

// Stamp the build type of *this* binary (the system benchmark
// library's own library_build_type says how the .so was compiled,
// which is useless for catching a debug-built simulator). The
// committed baseline was once recorded from a debug build and hid a
// 5x slowdown; scripts/check_simspeed.py refuses anything but
// hc_build_type == "release".
int main(int argc, char **argv) {
#ifdef NDEBUG
    benchmark::AddCustomContext("hc_build_type", "release");
#else
    benchmark::AddCustomContext("hc_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
