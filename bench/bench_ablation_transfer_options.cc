/**
 * @file
 * Ablation (paper §3.5 "Selecting the right transfer method" and
 * "Opting for user_check"): for a 2 KiB output buffer, compare the
 * `out` option against the `in&out` workaround (paper: saves
 * 885/1,617 cycles for ecalls/ocalls) and against `user_check`
 * zero-copy (paper: saves ~3,000 cycles).
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

const char *kEdl = R"(
    enclave {
        trusted {
            public void e_out([out, size=len] uint8_t* b, size_t len);
            public void e_inout([in, out, size=len] uint8_t* b,
                                size_t len);
            public void e_check([user_check] void* b);
        };
        untrusted {
            void o_from([out, size=len] uint8_t* b, size_t len);
            void o_tofrom([in, out, size=len] uint8_t* b, size_t len);
            void o_check([user_check] void* b);
        };
    };
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 5'000);
    mem::MachineConfig machine_config;
    machine_config.engine.numCores = 8;
    machine_config.engine.seed = 42;
    mem::Machine machine(machine_config);
    sgx::SgxPlatform platform(machine);
    sdk::EnclaveRuntime rt(platform, "ablation", kEdl);
    for (const char *name : {"e_out", "e_inout", "e_check"})
        rt.registerEcall(name, [](edl::StagedCall &) {});
    for (const char *name : {"o_from", "o_tofrom", "o_check"})
        rt.registerOcall(name, [](edl::StagedCall &) {});

    constexpr std::uint64_t kSize = 2048;
    double e_out = 0, e_inout = 0, e_check = 0;
    double o_from = 0, o_tofrom = 0, o_check = 0;

    machine.engine().spawn("driver", 0, [&] {
        mem::Buffer ubuf(machine, mem::Domain::Untrusted, kSize);
        const edl::Args two = {edl::Arg::buffer(ubuf),
                               edl::Arg::value(kSize)};
        const edl::Args one = {edl::Arg::buffer(ubuf)};
        auto median = [&](auto op) {
            return measure::measureOp(platform, op, config)
                .samples.median();
        };
        e_out = median([&] { rt.ecall("e_out", two); });
        e_inout = median([&] { rt.ecall("e_inout", two); });
        e_check = median([&] { rt.ecall("e_check", one); });

        // Ocalls issue from inside; park once and measure there.
        sgx::Tcs *tcs = rt.enclave().acquireTcs();
        platform.eenter(rt.enclave(), *tcs);
        mem::Buffer ebuf(machine, mem::Domain::Epc, kSize);
        const edl::Args etwo = {edl::Arg::buffer(ebuf),
                                edl::Arg::value(kSize)};
        const edl::Args eone = {edl::Arg::buffer(ebuf)};
        auto omedian = [&](auto op) {
            return measure::measureOracleOp(platform, op, config)
                .samples.median();
        };
        o_from = omedian([&] { rt.ocall("o_from", etwo); });
        o_tofrom = omedian([&] { rt.ocall("o_tofrom", etwo); });
        o_check = omedian([&] { rt.ocall("o_check", eone); });
        platform.eexit();
    });
    machine.engine().run();

    std::printf("Ablation: buffer-transfer strategy for a 2 KiB "
                "output buffer\n");
    TextTable table({"strategy", "ecall cycles", "ocall cycles",
                     "ecall saved vs out", "ocall saved vs out"});
    table.addRow({"out (zero + copy back)", TextTable::cycles(e_out),
                  TextTable::cycles(o_from), "-", "-"});
    table.addRow({"in&out (redundant copy in)",
                  TextTable::cycles(e_inout),
                  TextTable::cycles(o_tofrom),
                  TextTable::cycles(e_out - e_inout),
                  TextTable::cycles(o_from - o_tofrom)});
    table.addRow({"user_check (zero copy)",
                  TextTable::cycles(e_check),
                  TextTable::cycles(o_check),
                  TextTable::cycles(e_out - e_check),
                  TextTable::cycles(o_from - o_check)});
    table.print();
    std::printf("paper: in&out saves 885 (ecall) / 1,617 (ocall); "
                "user_check saves ~3,000 cycles\n");
    return 0;
}
