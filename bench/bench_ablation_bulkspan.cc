/**
 * @file
 * Ablation: the BulkSpan plane (range-batched probes through the
 * cache + MEE models) against per-line readBuffer/writeBuffer loops.
 * Sweeps span size x memory domain x plane; the golden-digest
 * harness (tests/test_determinism.cc) guarantees both planes return
 * bit-identical simulated cycles and stats, so this benchmark only
 * measures host throughput.
 *
 * Scenarios:
 *  - buffer sweep: the bench_host_simspeed encrypted-sweep body at
 *    each size/domain, plane on vs off,
 *  - marshalled ecall: an [in,out] payload through the SDK call
 *    path, documenting that the marshalling span hooks are
 *    cycle-neutral (the plane moves host time only),
 *
 * plus a self-check (after the benchmarks) asserting the plane's
 * headline claim: >= 3x host speedup on the 256 KiB EPC sweep. The
 * binary exits non-zero when the claim fails, so CI catches a
 * regressed fast path without parsing benchmark output.
 *
 * google-benchmark binary: --benchmark_format=json or
 * --benchmark_out=PATH emit machine-readable rows (CI artifact).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

/** The encrypted-sweep body shared with bench_host_simspeed. */
void
sweepOnce(mem::Machine &machine, mem::Domain domain,
          std::uint64_t bytes, int passes)
{
    machine.engine().spawn("sweep", 0, [&] {
        mem::Buffer buf(machine, domain, bytes);
        for (int i = 0; i < passes; ++i) {
            buf.read();
            buf.write(i % 8 == 7);
            if (i % 16 == 15) {
                machine.memory().evictAll();
                machine.memory().mee().clearNodeCache();
            }
        }
    });
    machine.engine().run();
}

/** Args: {bytes, domain (1 = EPC), bulk-span plane (1 = on)}. */
void
BM_BulkSpanBufferSweep(benchmark::State &state)
{
    const auto bytes = static_cast<std::uint64_t>(state.range(0));
    const auto domain =
        state.range(1) ? mem::Domain::Epc : mem::Domain::Untrusted;
    const bool bulk = state.range(2) != 0;
    constexpr int kPasses = 50;
    double passes = 0;
    for (auto _ : state) {
        mem::MachineConfig config;
        config.engine.numCores = 8;
        config.engine.seed = 42;
        mem::Machine machine(config);
        machine.memory().setBulkSpan(bulk);
        sweepOnce(machine, domain, bytes, kPasses);
        passes += kPasses;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(passes));
}
BENCHMARK(BM_BulkSpanBufferSweep)
    ->ArgsProduct({{4096, 65536, 262144, 1048576}, {0, 1}, {0, 1}});

/** Args: {payload bytes, bulk-span plane (1 = on)}. */
void
BM_BulkSpanMarshalEcall(benchmark::State &state)
{
    const auto bytes = static_cast<std::uint64_t>(state.range(0));
    const bool bulk = state.range(1) != 0;
    constexpr int kCalls = 64;
    double calls = 0;
    for (auto _ : state) {
        TestBed bed(/*with_interrupts=*/false);
        bed.machine->memory().setBulkSpan(bulk);
        bed.machine->engine().spawn("caller", 0, [&] {
            mem::Buffer buf(*bed.machine, mem::Domain::Untrusted,
                            bytes);
            const edl::Args args = {edl::Arg::buffer(buf),
                                    edl::Arg::value(bytes)};
            for (int i = 0; i < kCalls; ++i)
                bed.runtime->ecall("ecall_buf_inout", args);
        });
        bed.machine->engine().run();
        calls += kCalls;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(calls));
}
BENCHMARK(BM_BulkSpanMarshalEcall)
    ->ArgsProduct({{2048, 65536}, {0, 1}});

/**
 * Best-of-@p reps host seconds for the exact
 * BM_SimEncryptedBufferSweep/262144 body (bench_host_simspeed.cc):
 * an EPC and an untrusted buffer swept together — the workload the
 * headline >= 3x claim is made on.
 */
double
sweepSeconds(bool bulk, int reps)
{
    using Clock = std::chrono::steady_clock;
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        mem::MachineConfig config;
        config.engine.numCores = 8;
        config.engine.seed = 42;
        mem::Machine machine(config);
        machine.memory().setBulkSpan(bulk);
        const auto t0 = Clock::now();
        machine.engine().spawn("sweep", 0, [&] {
            mem::Buffer enc(machine, mem::Domain::Epc, 262144);
            mem::Buffer plain(machine, mem::Domain::Untrusted,
                              262144);
            for (int i = 0; i < 50; ++i) {
                enc.read();
                enc.write(i % 8 == 7);
                plain.read();
                plain.write(false);
                if (i % 16 == 15) {
                    machine.memory().evictAll();
                    machine.memory().mee().clearNodeCache();
                }
            }
        });
        machine.engine().run();
        const std::chrono::duration<double> dt = Clock::now() - t0;
        if (dt.count() < best)
            best = dt.count();
    }
    return best;
}

/** The headline claim: >= 3x on the 256 KiB EPC sweep. */
int
selfCheck()
{
#ifndef NDEBUG
    // Assert-heavy debug builds skew both planes; the claim is about
    // the release simulator (check_simspeed.py gates that build too).
    std::printf("bulkspan_selfcheck: skipped (debug build)\n");
    return 0;
#else
    const double off = sweepSeconds(/*bulk=*/false, 3);
    const double on = sweepSeconds(/*bulk=*/true, 3);
    const double speedup = off / on;
    std::printf("bulkspan_selfcheck: off=%.1fms on=%.1fms "
                "speedup=%.2fx (need >= 3x)\n",
                off * 1e3, on * 1e3, speedup);
    if (speedup < 3.0) {
        std::fprintf(stderr,
                     "bulkspan_selfcheck FAILED: %.2fx < 3x\n",
                     speedup);
        return 1;
    }
    return 0;
#endif
}

} // anonymous namespace

int main(int argc, char **argv) {
#ifdef NDEBUG
    benchmark::AddCustomContext("hc_build_type", "release");
#else
    benchmark::AddCustomContext("hc_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return selfCheck();
}
