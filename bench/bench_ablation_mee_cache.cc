/**
 * @file
 * Ablation: the MEE integrity-tree node cache. Fig 6's growing
 * encrypted-read overhead comes from tree nodes spilling out of this
 * small on-die cache as the buffer working set grows; sweeping the
 * cache size shows the curve's knee moving.
 */

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

/** Median encrypted/plain overhead (%) for one cache geometry. */
double
overheadFor(int cache_entries, std::uint64_t buffer_bytes, int runs)
{
    mem::MachineConfig config;
    config.engine.seed = 42;
    config.mem.meeCacheEntries = cache_entries;
    mem::Machine machine(config);
    sgx::SgxPlatform platform(machine);

    double overhead = 0;
    machine.engine().spawn("driver", 0, [&] {
        mem::Buffer enc(machine, mem::Domain::Epc, buffer_bytes);
        mem::Buffer plain(machine, mem::Domain::Untrusted,
                          buffer_bytes);
        SampleSet e, p;
        for (int i = 0; i < runs; ++i) {
            enc.evict();
            e.add(static_cast<double>(
                machine.memory().readBuffer(enc.addr(),
                                            buffer_bytes)));
            plain.evict();
            p.add(static_cast<double>(
                machine.memory().readBuffer(plain.addr(),
                                            buffer_bytes)));
        }
        overhead = (e.median() - p.median()) / p.median() * 100.0;
    });
    machine.engine().run();
    return overhead;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int runs = 300;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runs=", 7) == 0)
            runs = std::atoi(argv[i] + 7);
    }

    std::printf("Ablation: MEE node-cache size vs encrypted "
                "sequential-read overhead\n");
    std::printf("(default geometry: 48 entries, 2-way; paper Fig 6 "
                "overheads: 54.5%% at 2 KiB -> 102%% at 32 KiB)\n\n");

    const std::vector<std::uint64_t> sizes = {2048, 8192, 32768,
                                              131072};
    TextTable table({"node-cache entries", "2 KiB", "8 KiB",
                     "32 KiB", "128 KiB"});
    for (int entries : {8, 24, 48, 96, 512}) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (std::uint64_t size : sizes)
            row.push_back(
                TextTable::num(overheadFor(entries, size, runs), 1) +
                "%");
        table.addRow(row);
    }
    table.print();
    std::printf("\nbigger node caches flatten the curve (overhead "
                "approaches the pure MEE-pipeline\ncost); tiny ones "
                "pay tree-node fetches even for small buffers\n");
    return 0;
}
