/**
 * @file
 * Reproduces Figure 7: latency of consecutive memory writes for
 * encrypted and plaintext buffers (evicted before each experiment;
 * finished with clflush+mfence per the paper's protocol). The paper
 * finds encrypted-write overhead of roughly 6% for every buffer size
 * above 1 KiB: write-side MEE work happens at eviction time and
 * overlaps, unlike the read-side tree walk.
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 5'000);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;

    const std::vector<std::uint64_t> kibs = {1, 2, 4, 8, 16, 32};
    struct Point {
        std::uint64_t kib;
        double enc = 0, plain = 0;
    };
    std::vector<Point> points;

    machine.engine().spawn("driver", 0, [&] {
        bed.runInEnclave([&] {
            for (std::uint64_t kib : kibs) {
                const std::uint64_t bytes = kib * 1024;
                mem::Buffer enc(machine, mem::Domain::Epc, bytes);
                mem::Buffer plain(machine, mem::Domain::Untrusted,
                                  bytes);
                Point p;
                p.kib = kib;
                p.enc = measure::measureOracleOp(
                            platform, [&] { enc.write(true); }, config,
                            [&] { enc.evict(); })
                            .samples.median();
                p.plain = measure::measureOracleOp(
                              platform, [&] { plain.write(true); },
                              config, [&] { plain.evict(); })
                              .samples.median();
                points.push_back(p);
            }
        });
    });
    machine.engine().run();

    std::printf("Figure 7: consecutive memory writes, encrypted vs "
                "plaintext (median cycles)\n");
    TextTable table({"Buffer", "Plaintext", "Encrypted", "Overhead",
                     "Paper"});
    bool ok = true;
    for (const auto &p : points) {
        const double overhead = (p.enc - p.plain) / p.plain * 100.0;
        if (p.kib >= 1 && (overhead < 3.0 || overhead > 10.0))
            ok = false;
        table.addRow({std::to_string(p.kib) + " KiB",
                      TextTable::cycles(p.plain),
                      TextTable::cycles(p.enc),
                      TextTable::num(overhead, 1) + "%", "~6%"});
    }
    table.print();
    std::printf("shape check: overhead ~6%% (3-10%%) at every size "
                ">= 1 KiB: %s\n",
                ok ? "ok" : "FAILED");
    return 0;
}
