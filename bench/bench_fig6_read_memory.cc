/**
 * @file
 * Reproduces Figure 6: latency of consecutive memory reads for
 * encrypted and plaintext buffers, evicted from the LLC before every
 * experiment. The paper reports encrypted-read overheads of 54.5%,
 * 68%, 71%, 94% and 102% for 2, 4, 8, 16 and 32 KiB buffers — the
 * growth comes from the MEE's small on-die node cache covering fewer
 * of the integrity-tree nodes as the working set grows.
 */

#include <memory>
#include <vector>

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 5'000);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;

    struct Point {
        std::uint64_t kib;
        double paperOverhead;
        double enc = 0, plain = 0;
    };
    std::vector<Point> points = {{2, 54.5}, {4, 68.0}, {8, 71.0},
                                 {16, 94.0}, {32, 102.0}};

    // Average over several buffer placements: which integrity-tree
    // nodes collide in the MEE node cache depends on where a buffer
    // lands, just as on real hardware.
    constexpr int kPlacements = 6;

    machine.engine().spawn("driver", 0, [&] {
        bed.runInEnclave([&] {
            for (auto &p : points) {
                const std::uint64_t bytes = p.kib * 1024;
                std::vector<std::unique_ptr<mem::Buffer>> encs;
                for (int i = 0; i < kPlacements; ++i)
                    encs.push_back(std::make_unique<mem::Buffer>(
                        machine, mem::Domain::Epc, bytes));
                mem::Buffer plain(machine, mem::Domain::Untrusted,
                                  bytes);
                double enc_total = 0;
                for (auto &enc : encs) {
                    enc_total +=
                        measure::measureOracleOp(
                            platform, [&] { enc->read(); }, config,
                            [&] { enc->evict(); })
                            .samples.median();
                }
                p.enc = enc_total / kPlacements;
                p.plain = measure::measureOracleOp(
                              platform, [&] { plain.read(); }, config,
                              [&] { plain.evict(); })
                              .samples.median();
            }
        });
    });
    machine.engine().run();

    std::printf("Figure 6: consecutive memory reads, encrypted vs "
                "plaintext (median cycles)\n");
    TextTable table({"Buffer", "Plaintext", "Encrypted",
                     "Overhead", "Paper overhead"});
    for (const auto &p : points) {
        const double overhead = (p.enc - p.plain) / p.plain * 100.0;
        table.addRow({std::to_string(p.kib) + " KiB",
                      TextTable::cycles(p.plain),
                      TextTable::cycles(p.enc),
                      TextTable::num(overhead, 1) + "%",
                      TextTable::num(p.paperOverhead, 1) + "%"});
    }
    table.print();
    std::printf("shape check: overhead grows with buffer size: %s\n",
                [&] {
                    for (std::size_t i = 1; i < points.size(); ++i) {
                        const auto &a = points[i - 1];
                        const auto &b = points[i];
                        if ((b.enc - b.plain) / b.plain <
                            (a.enc - a.plain) / a.plain)
                            return "FAILED";
                    }
                    return "ok";
                }());
    return 0;
}
