/**
 * @file
 * Reproduces Figure 3: CDF of HotEcalls and HotOcalls. The paper's
 * checkpoints: over 78% of calls complete in less than 620 cycles,
 * and 99.97% complete within 1,400 cycles — 13-27x faster than the
 * SDK ecall/ocall mechanism.
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

void
report(const char *name, const SampleSet &samples)
{
    std::printf("\n%s (%zu samples): %s\n", name, samples.count(),
                samples.summary().c_str());
    std::printf("  %10s  %8s\n", "cycles", "CDF");
    for (double p :
         {1.0, 10.0, 25.0, 50.0, 78.0, 95.0, 99.0, 99.9, 99.97}) {
        std::printf("  %10.0f  %7.2f%%\n", samples.percentile(p), p);
    }
    std::printf("  fraction under 620 cycles:   %5.1f%% "
                "(paper: >78%%)\n",
                samples.cdfAt(620.0) * 100.0);
    std::printf("  fraction under 1,400 cycles: %5.2f%% "
                "(paper: >99.97%%)\n",
                samples.cdfAt(1400.0) * 100.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;
    auto &rt = *bed.runtime;

    measure::MeasureResult hot_ecall, hot_ocall;

    // HotEcall service: untrusted requester on core 0, trusted
    // responder parked inside the enclave on core 1.
    hotcalls::HotCallService hot_ecalls(rt, hotcalls::Kind::HotEcall,
                                        1);
    // HotOcall service: trusted requester (core 0, inside the
    // enclave), untrusted responder on core 2.
    hotcalls::HotCallService hot_ocalls(rt, hotcalls::Kind::HotOcall,
                                        2);

    machine.engine().spawn("driver", 0, [&] {
        hot_ecalls.start();
        hot_ocalls.start();
        const int empty_ecall = rt.ecallId("ecall_empty");
        const int empty_ocall = rt.ocallId("ocall_empty");

        hot_ecall = measure::measureOp(
            platform, [&] { hot_ecalls.call(empty_ecall, {}); },
            config);
        bed.runInEnclave([&] {
            hot_ocall = measure::measureOracleOp(
                platform, [&] { hot_ocalls.call(empty_ocall, {}); },
                config);
        });

        hot_ecalls.stop();
        hot_ocalls.stop();
        machine.engine().stop();
    });
    machine.engine().run();

    std::printf("Figure 3: CDF of HotEcalls and HotOcalls\n");
    report("HotEcall", hot_ecall.samples);
    report("HotOcall", hot_ocall.samples);
    std::printf("\nspeedup vs SDK (median): ecall %.1fx, "
                "ocall %.1fx (paper: 13-27x)\n",
                8'640.0 / hot_ecall.samples.median(),
                8'314.0 / hot_ocall.samples.median());
    std::printf("HotEcall fallbacks: %llu, HotOcall fallbacks: %llu "
                "(paper: timeout never expired)\n",
                static_cast<unsigned long long>(
                    hot_ecalls.stats().fallbacks),
                static_cast<unsigned long long>(
                    hot_ocalls.stats().fallbacks));
    return 0;
}
