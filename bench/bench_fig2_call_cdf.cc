/**
 * @file
 * Reproduces Figure 2: CDFs of ecall and ocall latency with warm and
 * cold caches. The paper's checkpoints:
 *  - warm ecalls: 99.9% complete in 8,600-8,680 cycles
 *  - cold ecalls: 99.9% complete in 12,500-17,000 cycles
 *  - warm ocalls: 99.9% complete in 8,200-8,400 cycles
 *  - cold ocalls: 99.9% complete in 12,500-17,000 cycles
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

namespace {

void
printCdf(const char *name, const SampleSet &samples)
{
    std::printf("\n%s CDF (%zu samples): %s\n", name, samples.count(),
                samples.summary().c_str());
    std::printf("  %10s  %8s\n", "cycles", "CDF");
    for (double p :
         {0.1, 1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0, 99.9, 99.97}) {
        std::printf("  %10.0f  %7.2f%%\n", samples.percentile(p), p);
    }
}

void
checkpoint(const char *what, bool ok)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "MISS", what);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;
    auto &rt = *bed.runtime;

    measure::MeasureResult ecall_warm, ecall_cold, ocall_warm,
        ocall_cold;

    machine.engine().spawn("driver", 0, [&] {
        const int empty_ecall = rt.ecallId("ecall_empty");
        const int empty_ocall = rt.ocallId("ocall_empty");

        ecall_warm = measure::measureOp(
            platform, [&] { rt.ecall(empty_ecall, {}); }, config);
        ecall_cold = measure::measureOp(
            platform, [&] { rt.ecall(empty_ecall, {}); }, config,
            [&] { machine.memory().evictAll(); });
        bed.runInEnclave([&] {
            ocall_warm = measure::measureOracleOp(
                platform, [&] { rt.ocall(empty_ocall, {}); }, config);
            ocall_cold = measure::measureOracleOp(
                platform, [&] { rt.ocall(empty_ocall, {}); }, config,
                [&] { machine.memory().evictAll(); });
        });
    });
    machine.engine().run();

    std::printf("Figure 2: CDFs of ecall/ocall performance\n");
    printCdf("2a ecall warm", ecall_warm.samples);
    checkpoint("99.9% of warm ecalls within 8,600-8,680 (paper)",
               ecall_warm.samples.percentile(0.05) >= 8'550 &&
                   ecall_warm.samples.percentile(99.9) <= 8'730);
    printCdf("2a ecall cold", ecall_cold.samples);
    checkpoint("99.9% of cold ecalls within 12,500-17,000 (paper)",
               ecall_cold.samples.percentile(0.05) >= 12'300 &&
                   ecall_cold.samples.percentile(99.9) <= 17'400);
    printCdf("2b ocall warm", ocall_warm.samples);
    checkpoint("99.9% of warm ocalls within 8,200-8,400 (paper)",
               ocall_warm.samples.percentile(0.05) >= 8'150 &&
                   ocall_warm.samples.percentile(99.9) <= 8'450);
    printCdf("2b ocall cold", ocall_cold.samples);
    checkpoint("99.9% of cold ocalls within 12,500-17,000 (paper)",
               ocall_cold.samples.percentile(0.05) >= 12'300 &&
                   ocall_cold.samples.percentile(99.9) <= 17'400);
    return 0;
}
