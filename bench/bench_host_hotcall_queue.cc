/**
 * @file
 * Host-level micro-performance of the library's own primitives,
 * using google-benchmark. These measure the *simulator's* execution
 * speed on the host machine (how fast the models run), complementing
 * the virtual-cycle results the paper benches report.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/chacha20.hh"
#include "crypto/sha256.hh"
#include "edl/parser.hh"
#include "hotcalls/hotcall.hh"
#include "mem/cache.hh"
#include "mem/machine.hh"
#include "sdk/runtime.hh"
#include "sim/engine.hh"
#include "support/hash.hh"
#include "support/rng.hh"

using namespace hc;

// ----------------------------------------------------------------------
// Support primitives.
// ----------------------------------------------------------------------

static void
BM_Rng(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

static void
BM_FastHash64(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fastHash64(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_FastHash64)->Arg(64)->Arg(4096);

// ----------------------------------------------------------------------
// Crypto.
// ----------------------------------------------------------------------

static void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::Sha256::digest(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

static void
BM_AeadSeal(benchmark::State &state)
{
    crypto::ChaChaKey key{};
    crypto::ChaChaNonce nonce{};
    std::vector<std::uint8_t> pt(
        static_cast<std::size_t>(state.range(0)), 3);
    std::vector<std::uint8_t> ct(pt.size());
    crypto::PolyTag tag;
    for (auto _ : state) {
        crypto::aeadSeal(key, nonce, nullptr, 0, pt.data(),
                         pt.size(), ct.data(), &tag);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(1460)->Arg(8192);

// ----------------------------------------------------------------------
// Simulation engine.
// ----------------------------------------------------------------------

static void
BM_FiberSwitch(benchmark::State &state)
{
    // Two same-core fibers ping-ponging on yield: each benchmark
    // iteration runs a fresh engine through 100k context switches.
    constexpr std::uint64_t kSwitches = 100'000;
    for (auto _ : state) {
        sim::Engine engine;
        std::uint64_t iterations = 0;
        auto body = [&] {
            while (iterations < kSwitches) {
                ++iterations;
                engine.yield();
            }
        };
        engine.spawn("a", 0, body);
        engine.spawn("b", 0, body);
        engine.run();
        benchmark::DoNotOptimize(iterations);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kSwitches));
}
BENCHMARK(BM_FiberSwitch);

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheModel cache(8_MiB, 16);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(0, rng.next() & 0xffffff, false));
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_EdlParse(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(edl::parseEdl(R"(
            enclave {
                trusted {
                    public void f([in, size=n] uint8_t* b, size_t n);
                };
                untrusted {
                    int64_t g([out, count=k] int* v, size_t k);
                };
            };
        )"));
    }
}
BENCHMARK(BM_EdlParse);

// ----------------------------------------------------------------------
// End-to-end simulated calls (host seconds per simulated call).
// ----------------------------------------------------------------------

namespace {

const char *kBenchEdl = R"(
    enclave {
        trusted { public void ecall_empty(); };
        untrusted { void ocall_empty(); };
    };
)";

} // anonymous namespace

static void
BM_SimulatedSdkEcall(benchmark::State &state)
{
    // Host cost of simulating one full SDK ecall round trip; each
    // benchmark iteration drives 1,000 simulated calls.
    constexpr int kCalls = 1'000;
    for (auto _ : state) {
        mem::Machine machine;
        sgx::SgxPlatform platform(machine);
        sdk::EnclaveRuntime runtime(platform, "bench", kBenchEdl);
        runtime.registerEcall("ecall_empty",
                              [](edl::StagedCall &) {});
        machine.engine().spawn("driver", 0, [&] {
            for (int i = 0; i < kCalls; ++i)
                runtime.ecall("ecall_empty", {});
        });
        machine.engine().run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kCalls);
}
BENCHMARK(BM_SimulatedSdkEcall);

static void
BM_HotCallRoundtrip(benchmark::State &state)
{
    // Host cost of simulating one HotEcall round trip through the
    // shared-line channel (requester + polling responder fibers).
    constexpr int kCalls = 1'000;
    for (auto _ : state) {
        mem::Machine machine;
        sgx::SgxPlatform platform(machine);
        sdk::EnclaveRuntime runtime(platform, "bench", kBenchEdl);
        runtime.registerEcall("ecall_empty",
                              [](edl::StagedCall &) {});
        hotcalls::HotCallService hot(runtime,
                                     hotcalls::Kind::HotEcall, 1);
        auto &engine = machine.engine();
        engine.spawn("driver", 0, [&] {
            hot.start();
            const int id = runtime.ecallId("ecall_empty");
            for (int i = 0; i < kCalls; ++i)
                hot.call(id, {});
            hot.stop();
            engine.stop();
        });
        engine.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kCalls);
}
BENCHMARK(BM_HotCallRoundtrip);

BENCHMARK_MAIN();
