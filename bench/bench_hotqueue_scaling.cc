/**
 * @file
 * HotQueue scaling study: multi-slot ring channels vs the paper's
 * single-line HotCall under concurrent requesters.
 *
 * Sweeps requester count x slot count x responder-pool size on the
 * HotEcall direction as google-benchmark cases (one simulated window
 * per case, Iterations(1)); every case reports
 *   sim_calls_per_s  aggregate completed calls per simulated second
 *   fallback_rate    fraction of calls that timed out to the SDK path
 *   mean_batch       mean slots served per responder batch
 * as counters, so the JSON output (--benchmark_out) is machine
 * comparable. A final phase demonstrates the adaptive pool: a
 * 4-requester burst wakes the second responder (scale-up), then a
 * single requester with think time lets the occupancy window park it
 * again (scale-down).
 *
 * Expectation: 4 requesters on a 4-slot / 2-responder HotQueue beat
 * the single-slot HotCallService by >= 2x, because the single shared
 * line serializes every requester (lock spinning plus timeout
 * fallbacks to full SDK calls), while the ring admits numSlots
 * requests in flight and the pool drains them in parallel.
 */

#include "bench/bench_common.hh"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include <benchmark/benchmark.h>

#include "hotcalls/hotqueue.hh"

using namespace hc;
using namespace hc::bench;

namespace {

/** Requester cores; driver runs on 7, responders on 1 (and 2). */
constexpr CoreId kRequesterCores[] = {3, 4, 5, 6};
Cycles g_measure_window = 2'000'000; // --window=N overrides

struct RunResult {
    double callsPerSec = 0;
    std::uint64_t calls = 0;
    std::uint64_t fallbacks = 0;
    double meanBatch = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;

    double fallbackRate() const
    {
        const double total =
            static_cast<double>(calls + fallbacks);
        return total > 0 ? static_cast<double>(fallbacks) / total
                         : 0.0;
    }
};

/** The comparison quoted after the sweep (4 req, 4 slots, pool 2). */
double g_base4 = 0;
double g_queue4 = 0;

/** Join @p thread from the driver fiber, charging wait time. */
void
join(sim::Engine &engine, sim::Thread *thread)
{
    while (thread->state() != sim::ThreadState::Done)
        engine.advance(sdk::kPauseCycles);
}

/**
 * Drive @p channel with @p requesters concurrent callers for one
 * measurement window. @return completed calls per simulated second.
 */
double
driveChannel(TestBed &bed, hotcalls::Channel &channel, int requesters)
{
    auto &engine = bed.machine->engine();
    const int id = bed.runtime->ecallId("ecall_empty");

    bool stop_flag = false;
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(requesters), 0);
    std::vector<sim::Thread *> threads;
    for (int r = 0; r < requesters; ++r) {
        threads.push_back(engine.spawn(
            "requester" + std::to_string(r), kRequesterCores[r],
            [&, r] {
                while (!stop_flag) {
                    channel.call(id, {});
                    ++counts[static_cast<std::size_t>(r)];
                }
            }));
    }

    const Cycles t0 = bed.machine->now();
    engine.sleepFor(g_measure_window);
    stop_flag = true;
    for (auto *t : threads)
        join(engine, t);
    const double seconds = cyclesToSeconds(bed.machine->now() - t0);

    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    // A degenerate window (--window=0) must not divide by zero.
    return seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
}

/** One sweep point: a HotQueue with the given geometry. */
RunResult
runHotQueue(int requesters, int slots, int pool)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &engine = bed.machine->engine();

    hotcalls::HotQueueConfig config;
    config.numSlots = slots;
    config.responderCores = {1};
    if (pool > 1)
        config.responderCores.push_back(2);
    hotcalls::HotQueue queue(*bed.runtime, hotcalls::Kind::HotEcall,
                             config);

    RunResult result;
    engine.spawn("driver", 7, [&] {
        queue.start();
        result.callsPerSec = driveChannel(bed, queue, requesters);
        const auto &stats = queue.stats();
        result.calls = stats.calls;
        result.fallbacks = stats.fallbacks;
        result.meanBatch = stats.batchSize.mean();
        result.scaleUps = stats.scaleUps;
        result.scaleDowns = stats.scaleDowns;
        queue.stop();
        engine.stop();
    });
    engine.run();
    return result;
}

/** The paper's single-line channel as the baseline. */
RunResult
runBaseline(int requesters)
{
    TestBed bed(/*with_interrupts=*/false);
    auto &engine = bed.machine->engine();

    hotcalls::HotCallService hot(*bed.runtime,
                                 hotcalls::Kind::HotEcall, 1);

    RunResult result;
    engine.spawn("driver", 7, [&] {
        hot.start();
        result.callsPerSec = driveChannel(bed, hot, requesters);
        result.calls = hot.stats().calls;
        result.fallbacks = hot.stats().fallbacks;
        hot.stop();
        engine.stop();
    });
    engine.run();
    return result;
}

void
setCounters(benchmark::State &state, const RunResult &result)
{
    state.counters["sim_calls_per_s"] = result.callsPerSec;
    state.counters["fallback_rate"] = result.fallbackRate();
    state.counters["mean_batch"] = result.meanBatch;
}

void
BM_SingleLineHotCall(benchmark::State &state)
{
    const int requesters = static_cast<int>(state.range(0));
    RunResult result;
    for (auto _ : state)
        result = runBaseline(requesters);
    setCounters(state, result);
    if (requesters == 4)
        g_base4 = result.callsPerSec;
}

void
BM_HotQueue(benchmark::State &state)
{
    const int requesters = static_cast<int>(state.range(0));
    const int slots = static_cast<int>(state.range(1));
    const int pool = static_cast<int>(state.range(2));
    RunResult result;
    for (auto _ : state)
        result = runHotQueue(requesters, slots, pool);
    setCounters(state, result);
    if (requesters == 4 && slots == 4 && pool == 2)
        g_queue4 = result.callsPerSec;
}

BENCHMARK(BM_SingleLineHotCall)
    ->ArgNames({"req"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_HotQueue)
    ->ArgNames({"req", "slots", "pool"})
    ->ArgsProduct({{1, 2, 4}, {2, 4, 8}, {1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/**
 * The adaptive-pool demonstration: burst with 4 requesters (waking
 * the second responder), then one light requester with think time
 * (parking it again).
 */
void
runAdaptive()
{
    TestBed bed(/*with_interrupts=*/false);
    auto &engine = bed.machine->engine();
    const int id = bed.runtime->ecallId("ecall_empty");

    hotcalls::HotQueueConfig config;
    config.numSlots = 4;
    config.responderCores = {1, 2};
    hotcalls::HotQueue queue(*bed.runtime, hotcalls::Kind::HotEcall,
                             config);

    std::printf("Adaptive pool (4 slots, pool 1..2, min 1):\n");
    engine.spawn("driver", 7, [&] {
        queue.start();
        // Idle moment first, so the surplus responder parks and the
        // burst has to wake it (a scale-up).
        engine.sleepFor(100'000);

        const double burst = driveChannel(bed, queue, 4);
        std::printf("  burst   4 requesters: %8.0f calls/s, "
                    "active=%d, scale-ups=%llu\n",
                    burst, queue.activeResponders(),
                    static_cast<unsigned long long>(
                        queue.stats().scaleUps));

        // Light phase: one requester with think time between calls,
        // long enough for several occupancy windows to elapse.
        bool stop_flag = false;
        auto *light = engine.spawn("light", kRequesterCores[0], [&] {
            while (!stop_flag) {
                queue.call(id, {});
                engine.sleepFor(2'000);
            }
        });
        engine.sleepFor(2 * g_measure_window);
        stop_flag = true;
        join(engine, light);

        std::printf("  light   1 requester : active=%d, "
                    "scale-downs=%llu, parked surplus responder %s\n",
                    queue.activeResponders(),
                    static_cast<unsigned long long>(
                        queue.stats().scaleDowns),
                    queue.stats().scaleDowns > 0 ? "yes" : "NO");
        std::printf("  queue-depth histogram: %s\n",
                    queue.stats().depth.summary().c_str());
        std::printf("  batch-size  histogram: %s\n",
                    queue.stats().batchSize.summary().c_str());

        queue.stop();
        engine.stop();
    });
    engine.run();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Strip --window=N (ours) before google-benchmark sees the
    // arguments; it rejects flags it does not know.
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--window=", 9) == 0)
            g_measure_window =
                static_cast<Cycles>(std::atoll(argv[i] + 9));
        else
            passthrough.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(passthrough.size());

    std::printf("HotQueue scaling: requester count x slot count x "
                "responder pool\n(HotEcall direction, ecall_empty, "
                "%.1fms simulated window per point)\n\n",
                cyclesToMillis(g_measure_window));

    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n4 requesters, 4 slots, pool 2 vs single-line "
                "hotcall: %.2fx\n\n",
                g_base4 > 0 ? g_queue4 / g_base4 : 0.0);

    runAdaptive();
    return 0;
}
