/**
 * @file
 * Reproduces Table 1: the ten microbenchmarks of fundamental SGX
 * operations (median cycles). Also reports the AEX-discard counts the
 * paper's Section 3.1 methodology produces (~200-300 per 200,000).
 */

#include "bench/bench_common.hh"

namespace {

using namespace hc;
using namespace hc::bench;

struct Row {
    std::string name;
    double paper;
    double measured;
    std::uint64_t aex;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;
    auto &rt = *bed.runtime;

    std::vector<Row> rows;
    std::uint64_t total_runs = 0;

    machine.engine().spawn("driver", 0, [&] {
        auto add = [&](const std::string &name, double paper,
                       const measure::MeasureResult &r) {
            rows.push_back({name, paper, r.samples.median(),
                            r.discardedAex});
            total_runs += r.samples.count() + r.discardedAex;
        };

        const int empty_ecall = rt.ecallId("ecall_empty");
        mem::Buffer ubuf(machine, mem::Domain::Untrusted, 2048);

        // 1: Ecall (warm cache).
        add("1 Ecall (warm)", 8'640,
            measure::measureOp(
                platform, [&] { rt.ecall(empty_ecall, {}); }, config));

        // 2: Ecall (cold cache): flush the whole LLC before each run.
        add("2 Ecall (cold)", 14'170,
            measure::measureOp(
                platform, [&] { rt.ecall(empty_ecall, {}); }, config,
                [&] { machine.memory().evictAll(); }));

        // 3: Ecall + 2 KiB buffer in / out / in&out.
        const edl::Args buf_args = {edl::Arg::buffer(ubuf),
                                    edl::Arg::value(2048)};
        add("3 Ecall 2KB in", 9'861,
            measure::measureOp(
                platform,
                [&] { rt.ecall("ecall_buf_in", buf_args); }, config));
        add("3 Ecall 2KB out", 11'172,
            measure::measureOp(
                platform,
                [&] { rt.ecall("ecall_buf_out", buf_args); }, config));
        add("3 Ecall 2KB in&out", 10'827,
            measure::measureOp(
                platform,
                [&] { rt.ecall("ecall_buf_inout", buf_args); },
                config));

        // 4/5: Ocall warm/cold, measured across the ocall round trip
        // from inside the enclave.
        const int empty_ocall = rt.ocallId("ocall_empty");
        measure::MeasureResult r_ocall_warm, r_ocall_cold;
        bed.runInEnclave([&] {
            r_ocall_warm = measure::measureOracleOp(
                platform, [&] { rt.ocall(empty_ocall, {}); }, config);
            r_ocall_cold = measure::measureOracleOp(
                platform, [&] { rt.ocall(empty_ocall, {}); }, config,
                [&] { machine.memory().evictAll(); });
        });
        add("4 Ocall (warm)", 8'314, r_ocall_warm);
        add("5 Ocall (cold)", 14'160, r_ocall_cold);

        // 6: Ocall + 2 KiB buffer to / from / to&from (the buffer
        // lives in enclave memory; directions per Section 3.3).
        mem::Buffer ebuf(machine, mem::Domain::Epc, 2048);
        const edl::Args ebuf_args = {edl::Arg::buffer(ebuf),
                                     edl::Arg::value(2048)};
        measure::MeasureResult r_to, r_from, r_tofrom;
        bed.runInEnclave([&] {
            r_to = measure::measureOracleOp(
                platform,
                [&] { rt.ocall("ocall_buf_to", ebuf_args); }, config);
            r_from = measure::measureOracleOp(
                platform,
                [&] { rt.ocall("ocall_buf_from", ebuf_args); },
                config);
            r_tofrom = measure::measureOracleOp(
                platform,
                [&] { rt.ocall("ocall_buf_tofrom", ebuf_args); },
                config);
        });
        add("6 Ocall 2KB to", 9'252, r_to);
        add("6 Ocall 2KB from", 11'418, r_from);
        add("6 Ocall 2KB to&from", 9'801, r_tofrom);

        // 7/8: consecutive 2 KiB reads/writes, encrypted vs plain,
        // buffers evicted before every measurement.
        mem::Buffer enc(machine, mem::Domain::Epc, 2048);
        mem::Buffer plain(machine, mem::Domain::Untrusted, 2048);
        measure::MeasureResult r7e, r7p, r8e, r8p, r9e, r9p, r10e,
            r10p;
        bed.runInEnclave([&] {
            r7e = measure::measureOracleOp(
                platform, [&] { enc.read(); }, config,
                [&] { enc.evict(); });
            r7p = measure::measureOracleOp(
                platform, [&] { plain.read(); }, config,
                [&] { plain.evict(); });
            r8e = measure::measureOracleOp(
                platform, [&] { enc.write(true); }, config,
                [&] { enc.evict(); });
            r8p = measure::measureOracleOp(
                platform, [&] { plain.write(true); }, config,
                [&] { plain.evict(); });

            // 9/10: single cache-line load/store misses.
            auto &memory = machine.memory();
            r9e = measure::measureOracleOp(
                platform,
                [&] { memory.accessWord(enc.addr(), false); }, config,
                [&] { memory.evictRange(enc.addr(), 64); });
            r9p = measure::measureOracleOp(
                platform,
                [&] { memory.accessWord(plain.addr(), false); },
                config,
                [&] { memory.evictRange(plain.addr(), 64); });
            r10e = measure::measureOracleOp(
                platform,
                [&] { memory.accessWord(enc.addr(), true); }, config,
                [&] { memory.evictRange(enc.addr(), 64); });
            r10p = measure::measureOracleOp(
                platform,
                [&] { memory.accessWord(plain.addr(), true); }, config,
                [&] { memory.evictRange(plain.addr(), 64); });
        });
        add("7 Read 2KB encrypted", 1'124, r7e);
        add("7 Read 2KB plaintext", 727, r7p);
        add("8 Write 2KB encrypted", 6'875, r8e);
        add("8 Write 2KB plaintext", 6'458, r8p);
        add("9 Load miss encrypted", 400, r9e);
        add("9 Load miss plaintext", 308, r9p);
        add("10 Store miss encrypted", 575, r10e);
        add("10 Store miss plaintext", 481, r10p);
    });
    machine.engine().run();

    std::printf("Table 1: microbenchmarks of fundamental SGX "
                "operations (median cycles)\n");
    std::printf("batches=%d runs/batch=%d\n", config.batches,
                config.runsPerBatch);
    TextTable table({"Microbenchmark", "Paper (median)",
                     "Measured (median)", "Delta", "AEX discarded"});
    for (const auto &row : rows) {
        table.addRow({row.name, TextTable::cycles(row.paper),
                      TextTable::cycles(row.measured),
                      deltaPercent(row.measured, row.paper),
                      std::to_string(row.aex)});
    }
    table.print();

    std::uint64_t total_aex = 0;
    for (const auto &row : rows)
        total_aex += row.aex;
    std::printf("total AEX-discarded runs: %llu (paper: ~200-300 per "
                "200,000 enclave-bound measurements)\n",
                static_cast<unsigned long long>(total_aex));
    return 0;
}
