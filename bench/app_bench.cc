/**
 * @file
 * Application-bench harness implementation.
 */

#include "bench/app_bench.hh"

#include "apps/httpd.hh"
#include "apps/kvcache.hh"
#include "apps/vpn.hh"
#include "workloads/httpload.hh"
#include "workloads/memtier.hh"
#include "workloads/vpn_traffic.hh"

namespace hc::bench {

namespace {

/** Build the paper's machine (8 logical cores, AEX armed). */
mem::MachineConfig
machineConfig(std::uint64_t seed)
{
    mem::MachineConfig config;
    config.engine.numCores = 8;
    config.engine.seed = seed;
    config.engine.interruptMeanCycles = 7'000'000;
    return config;
}

port::PortConfig
portConfig(const AppRunConfig &run,
           std::set<std::string> hot_ocalls)
{
    port::PortConfig config;
    config.mode = run.mode;
    config.marshal.noRedundantZeroing = run.noRedundantZeroing;
    config.fastPath = run.fastPath;
    config.hotOcallCore = 2;
    config.hotEcallCore = 1;
    // Core 5 is unused by every app testbed (server 0, client 4,
    // driver 7, VPN host 3 / peer 6): let the shared ocall HotQueue
    // scale a second responder onto it under load.
    config.extraHotOcallCores = {5};
    config.hotOcalls = std::move(hot_ocalls);
    return config;
}

std::map<std::string, double>
toRates(const std::map<std::string, std::uint64_t> &counts,
        double seconds, double *total)
{
    std::map<std::string, double> rates;
    *total = 0;
    for (const auto &entry : counts) {
        const double rate =
            static_cast<double>(entry.second) / seconds;
        rates[entry.first] = rate;
        *total += rate;
    }
    return rates;
}

} // anonymous namespace

std::vector<AppRunConfig>
standardConfigs(double measure_sec)
{
    std::vector<AppRunConfig> configs(4);
    configs[0].mode = port::Mode::Native;
    configs[1].mode = port::Mode::Sgx;
    configs[2].mode = port::Mode::SgxHotCalls;
    configs[3].mode = port::Mode::SgxHotCalls;
    configs[3].noRedundantZeroing = true;
    for (auto &c : configs)
        c.measureSec = measure_sec;
    return configs;
}

AppRunConfig
fastPathConfig(double measure_sec)
{
    AppRunConfig config;
    config.mode = port::Mode::SgxHotCalls;
    config.noRedundantZeroing = true;
    config.fastPath = 1;
    config.measureSec = measure_sec;
    return config;
}

std::string
configLabel(const AppRunConfig &config)
{
    std::string label = port::modeName(config.mode);
    if (config.noRedundantZeroing)
        label += "+nrz";
    if (config.fastPath > 0)
        label += "+fastpath";
    return label;
}

AppRunResult
runKvCache(const AppRunConfig &run)
{
    mem::Machine machine(machineConfig(run.seed));
    sgx::SgxPlatform platform(machine);
    platform.installAexHandler();
    os::Kernel kernel(machine);

    // Paper §6.2: HotCalls accelerate read, sendmsg (ocalls) and
    // RunEnclaveFunction (the HotEcall channel covers the latter).
    port::PortedApp app(platform, kernel, "memcached",
                        portConfig(run, {"ocall_read",
                                         "ocall_sendmsg"}));
    app.declareImports({"read", "sendmsg", "epoll_wait", "close",
                        "accept", "time"});

    apps::KvCacheServer server(app);
    workloads::MemtierClient client(kernel, server.listenPort());

    AppRunResult result;
    auto &engine = machine.engine();
    engine.spawn("driver", 7, [&] {
        app.startHotCalls();
        server.start(0);
        client.start(4);

        engine.sleepFor(secondsToCycles(run.warmupSec));
        app.resetCounters();
        client.recordLatencies(true);
        const std::uint64_t done0 = client.completed();
        const Cycles t0 = machine.now();

        engine.sleepFor(secondsToCycles(run.measureSec));
        const std::uint64_t done1 = client.completed();
        const Cycles t1 = machine.now();
        const double seconds = cyclesToSeconds(t1 - t0);

        result.throughput =
            static_cast<double>(done1 - done0) / seconds;
        if (!client.latencies().empty()) {
            result.latencyMs =
                cyclesToMillis(static_cast<Cycles>(
                    client.latencies().mean()));
        }
        result.callRatesPerSec = toRates(app.callCounts(), seconds,
                                         &result.totalCallsPerSec);
        result.integrityErrors = client.corrupted();

        client.stop();
        server.stop();
        app.stopHotCalls();
        engine.stop();
    });
    engine.run();
    return result;
}

AppRunResult
runHttpd(const AppRunConfig &run)
{
    mem::Machine machine(machineConfig(run.seed));
    sgx::SgxPlatform platform(machine);
    platform.installAexHandler();
    os::Kernel kernel(machine);

    // Paper §6.4: all 14 frequent calls go through HotCalls.
    port::PortedApp app(
        platform, kernel, "lighttpd",
        portConfig(run,
                   {"ocall_read", "ocall_fcntl", "ocall_epoll_ctl",
                    "ocall_close", "ocall_setsockopt",
                    "ocall_fxstat64", "ocall_inet_ntop",
                    "ocall_accept", "ocall_inet_addr", "ocall_ioctl",
                    "ocall_open", "ocall_sendfile", "ocall_shutdown",
                    "ocall_writev", "ocall_epoll_wait",
                    "ocall_listen", "ocall_epoll_create"}));
    app.declareImports({"read", "fcntl", "close", "setsockopt",
                        "accept", "ioctl", "shutdown", "writev",
                        "sendfile", "open"});

    apps::HttpServer server(app);
    workloads::HttpLoadClient client(kernel, server.listenPort());

    AppRunResult result;
    auto &engine = machine.engine();
    engine.spawn("driver", 7, [&] {
        app.startHotCalls();
        server.start(0);
        // Give the server a moment to open its listening socket.
        engine.sleepFor(secondsToCycles(0.001));
        client.start(4);

        engine.sleepFor(secondsToCycles(run.warmupSec));
        app.resetCounters();
        client.recordLatencies(true);
        const std::uint64_t done0 = client.completed();
        const Cycles t0 = machine.now();

        engine.sleepFor(secondsToCycles(run.measureSec));
        const std::uint64_t done1 = client.completed();
        const Cycles t1 = machine.now();
        const double seconds = cyclesToSeconds(t1 - t0);

        result.throughput =
            static_cast<double>(done1 - done0) / seconds;
        if (!client.latencies().empty()) {
            result.latencyMs = cyclesToMillis(static_cast<Cycles>(
                client.latencies().mean()));
        }
        result.callRatesPerSec = toRates(app.callCounts(), seconds,
                                         &result.totalCallsPerSec);
        result.integrityErrors = client.badFetches();

        client.stop();
        server.stop();
        app.stopHotCalls();
        engine.stop();
    });
    engine.run();
    return result;
}

namespace {

/** Common VPN testbed setup; runs either traffic mode. */
AppRunResult
runVpn(const AppRunConfig &run, workloads::VpnTrafficConfig traffic)
{
    mem::Machine machine(machineConfig(run.seed));
    sgx::SgxPlatform platform(machine);
    platform.installAexHandler();
    os::Kernel kernel(machine);

    // Paper §6.3: HotCalls for all seven frequent calls.
    port::PortedApp app(
        platform, kernel, "openvpn",
        portConfig(run, {"ocall_poll", "ocall_time", "ocall_getpid",
                         "ocall_write", "ocall_recvfrom",
                         "ocall_read", "ocall_sendto"}));
    app.declareImports({"poll", "time", "getpid", "write", "recvfrom",
                        "read", "sendto"});

    crypto::ChaChaKey key{};
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(0x42 + i);

    apps::VpnConfig vpn_config;
    apps::VpnTunnel tunnel(app, key, vpn_config);

    AppRunResult result;
    auto &engine = machine.engine();
    engine.spawn("driver", 7, [&] {
        app.startHotCalls();
        tunnel.start(0);

        workloads::VpnLanHost host(kernel, tunnel.tunAppFd(),
                                   traffic);
        workloads::VpnRemotePeer peer(
            kernel, key, vpn_config.remoteUdpPort,
            vpn_config.localUdpPort, traffic);
        host.start(3);
        peer.start(6);

        engine.sleepFor(secondsToCycles(run.warmupSec));
        app.resetCounters();
        peer.recordRtts(true);
        const std::uint64_t bytes0 = host.payloadBytes();
        const Cycles t0 = machine.now();

        engine.sleepFor(secondsToCycles(run.measureSec));
        const std::uint64_t bytes1 = host.payloadBytes();
        const Cycles t1 = machine.now();
        const double seconds = cyclesToSeconds(t1 - t0);

        result.throughput = static_cast<double>(bytes1 - bytes0) *
                            8.0 / seconds / 1e6; // Mbit/s
        if (!peer.pingRtts().empty()) {
            result.latencyMs = cyclesToMillis(
                static_cast<Cycles>(peer.pingRtts().mean()));
        }
        result.callRatesPerSec = toRates(app.callCounts(), seconds,
                                         &result.totalCallsPerSec);
        result.integrityErrors =
            tunnel.authFailures() + peer.authFailures();

        peer.stop();
        host.stop();
        tunnel.stop();
        app.stopHotCalls();
        engine.stop();
    });
    engine.run();
    return result;
}

} // anonymous namespace

AppRunResult
runVpnIperf(const AppRunConfig &run)
{
    workloads::VpnTrafficConfig traffic;
    traffic.mode = workloads::VpnTrafficConfig::Mode::Iperf;
    return runVpn(run, traffic);
}

AppRunResult
runVpnPing(const AppRunConfig &run)
{
    workloads::VpnTrafficConfig traffic;
    traffic.mode = workloads::VpnTrafficConfig::Mode::Ping;
    return runVpn(run, traffic);
}

} // namespace hc::bench
