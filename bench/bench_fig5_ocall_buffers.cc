/**
 * @file
 * Reproduces Figure 5: latency of an ocall + transferring a buffer
 * to / from / to&from untrusted memory, across buffer sizes. Anchors:
 * the 2 KiB points of Table 1 row 6 (9,252 / 11,418 / 9,801) and the
 * paper's observation that `from` (the SDK `out` option) is the most
 * expensive due to redundant zeroing of the untrusted buffer.
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 5'000);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;
    auto &rt = *bed.runtime;

    const std::vector<std::uint64_t> sizes = {64,   256,  1024, 2048,
                                              4096, 8192, 16384};
    struct Point {
        std::uint64_t size;
        double to, from, tofrom;
    };
    std::vector<Point> points;

    machine.engine().spawn("driver", 0, [&] {
        for (std::uint64_t size : sizes) {
            mem::Buffer buf(machine, mem::Domain::Epc, size);
            const edl::Args args = {edl::Arg::buffer(buf),
                                    edl::Arg::value(size)};
            Point p;
            p.size = size;
            bed.runInEnclave([&] {
                p.to = measure::measureOracleOp(
                           platform,
                           [&] { rt.ocall("ocall_buf_to", args); },
                           config)
                           .samples.median();
                p.from = measure::measureOracleOp(
                             platform,
                             [&] { rt.ocall("ocall_buf_from", args); },
                             config)
                             .samples.median();
                p.tofrom =
                    measure::measureOracleOp(
                        platform,
                        [&] { rt.ocall("ocall_buf_tofrom", args); },
                        config)
                        .samples.median();
            });
            points.push_back(p);
        }
    });
    machine.engine().run();

    std::printf("Figure 5: ocall + buffer transfer latency "
                "(median cycles)\n");
    TextTable table({"Buffer size", "to", "from", "to&from",
                     "paper 2KB (to/from/to&from)"});
    for (const auto &p : points) {
        table.addRow(
            {std::to_string(p.size) + " B", TextTable::cycles(p.to),
             TextTable::cycles(p.from), TextTable::cycles(p.tofrom),
             p.size == 2048 ? "9,252 / 11,418 / 9,801" : ""});
    }
    table.print();
    std::printf("shape checks: from > to&from > to at every size "
                "(redundant-zeroing penalty): %s\n",
                [&] {
                    for (const auto &p : points)
                        if (!(p.from > p.tofrom && p.tofrom > p.to))
                            return "FAILED";
                    return "ok";
                }());
    return 0;
}
