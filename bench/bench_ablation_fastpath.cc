/**
 * @file
 * Ablation: the FastPath data plane (cached call plans, per-slot
 * staging arenas, inline slot payloads) against the legacy
 * heap-staged marshalling, on a hot ocall carrying a buffer.
 *
 * Four phases:
 *  1. headline: a 2 KiB in&out hot ocall, legacy vs FastPath —
 *     the tentpole claim is a >= 25% median-cycle reduction,
 *  2. inline-threshold sweep: payload size x inlinePayloadBytes,
 *  3. arena-vs-heap: the same payload staged in the slot arena vs
 *     spilled to the legacy heap path (arena disabled),
 *  4. No-Redundant-Zeroing interaction on an out-only ocall.
 *
 * --runs=N scales the samples per batch; --json=PATH additionally
 * writes every row as JSON (consumed by the CI artifact upload).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "hotcalls/hotqueue.hh"

using namespace hc;
using namespace hc::bench;

namespace {

/** One measured configuration. */
struct Row {
    std::string section;
    std::string call;
    std::uint64_t payload = 0;
    int fastPath = 0;
    std::uint64_t inlineBytes = 0;
    std::uint64_t arenaBytes = 0;
    bool nrz = false;
    double medianCycles = 0;
    double meanCycles = 0;
    std::uint64_t inlineStaged = 0;
    std::uint64_t arenaStaged = 0;
    std::uint64_t heapStaged = 0;
};

/**
 * Measure one hot ocall configuration on a fresh testbed: a HotOcall
 * HotQueue (1 slot is enough — one requester), the named microbench
 * ocall with a @p payload byte buffer, oracle-timed round trips.
 */
Row
runPoint(const std::string &section, const char *call,
         std::uint64_t payload, int fast_path,
         std::uint64_t inline_bytes, std::uint64_t arena_bytes,
         bool nrz, const measure::MeasureConfig &config)
{
    TestBed bed(/*with_interrupts=*/true,
                {.noRedundantZeroing = nrz});
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;

    hotcalls::HotQueueConfig queue_config;
    queue_config.responderCores = {2};
    queue_config.fastPath = fast_path;
    queue_config.inlinePayloadBytes = inline_bytes;
    queue_config.arenaBytesPerSlot = arena_bytes;
    hotcalls::HotQueue hot(*bed.runtime, hotcalls::Kind::HotOcall,
                           queue_config);

    Row row;
    row.section = section;
    row.call = call;
    row.payload = payload;
    row.fastPath = fast_path;
    row.inlineBytes = inline_bytes;
    row.arenaBytes = arena_bytes;
    row.nrz = nrz;

    measure::MeasureResult result;
    machine.engine().spawn("driver", 0, [&] {
        hot.start();
        const int id = bed.runtime->ocallId(call);
        bed.runInEnclave([&] {
            mem::Buffer buf(machine, mem::Domain::Epc,
                            payload ? payload : 1);
            for (std::uint64_t i = 0; i < payload; ++i)
                buf.data()[i] = static_cast<std::uint8_t>(i);
            result = measure::measureOracleOp(
                platform,
                [&] {
                    hot.call(id, {edl::Arg::buffer(buf),
                                  edl::Arg::value(payload)});
                },
                config);
        });
        const auto &stats = hot.stats();
        row.inlineStaged = stats.inlineStaged;
        row.arenaStaged = stats.arenaStaged;
        row.heapStaged = stats.heapStaged;
        hot.stop();
        machine.engine().stop();
    });
    machine.engine().run();

    row.medianCycles = result.samples.median();
    row.meanCycles = result.samples.mean();
    return row;
}

void
writeJson(const char *path, const std::vector<Row> &rows)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_ablation_fastpath\",\n"
                    "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"section\": \"%s\", \"call\": \"%s\", "
            "\"payload\": %llu, \"fastpath\": %d, "
            "\"inline_bytes\": %llu, \"arena_bytes\": %llu, "
            "\"nrz\": %s, \"median_cycles\": %.1f, "
            "\"mean_cycles\": %.1f, \"inline_staged\": %llu, "
            "\"arena_staged\": %llu, \"heap_staged\": %llu}%s\n",
            r.section.c_str(), r.call.c_str(),
            static_cast<unsigned long long>(r.payload), r.fastPath,
            static_cast<unsigned long long>(r.inlineBytes),
            static_cast<unsigned long long>(r.arenaBytes),
            r.nrz ? "true" : "false", r.medianCycles, r.meanCycles,
            static_cast<unsigned long long>(r.inlineStaged),
            static_cast<unsigned long long>(r.arenaStaged),
            static_cast<unsigned long long>(r.heapStaged),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

std::string
placement(const Row &row)
{
    if (!row.fastPath)
        return "legacy heap";
    std::string out;
    if (row.inlineStaged)
        out += "inline ";
    if (row.arenaStaged)
        out += "arena ";
    if (row.heapStaged)
        out += "heap ";
    if (out.empty())
        return "none";
    out.pop_back();
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    auto config = parseMeasureConfig(argc, argv, 2'000);
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;

    std::printf("Ablation: FastPath marshalling (staging arenas, "
                "inline payloads, cached plans)\n(hot ocall via a "
                "HotQueue, %d x %d samples per point)\n",
                config.batches, config.runsPerBatch);

    std::vector<Row> rows;

    // --------------------------------------------------------------
    // 1. Headline: 2 KiB in&out hot ocall, legacy vs FastPath.
    // --------------------------------------------------------------
    const Row legacy = runPoint("headline", "ocall_buf_tofrom", 2048,
                                /*fast_path=*/0, 64, 4096, false,
                                config);
    const Row fast = runPoint("headline", "ocall_buf_tofrom", 2048,
                              /*fast_path=*/1, 64, 4096, false,
                              config);
    rows.push_back(legacy);
    rows.push_back(fast);
    const double cut =
        (1.0 - fast.medianCycles / legacy.medianCycles) * 100.0;
    std::printf("\n2 KiB in&out hot ocall, median cycles:\n"
                "  legacy data plane:   %8.0f\n"
                "  FastPath data plane: %8.0f (%s)\n"
                "  reduction: %.1f%% (tentpole target: >= 25%%)\n",
                legacy.medianCycles, fast.medianCycles,
                placement(fast).c_str(), cut);

    // --------------------------------------------------------------
    // 2. Inline-threshold sweep.
    // --------------------------------------------------------------
    std::printf("\nInline threshold sweep (in&out payloads; median "
                "cycles; 0 = inline staging off):\n");
    TextTable inline_table({"payload", "inline=0", "inline=64",
                            "inline=256", "inline=1024",
                            "placement@1024"});
    for (std::uint64_t payload : {16, 64, 256, 1024, 2048}) {
        std::vector<std::string> cells = {std::to_string(payload)};
        Row last;
        for (std::uint64_t inline_bytes : {0, 64, 256, 1024}) {
            last = runPoint("inline_sweep", "ocall_buf_tofrom",
                            payload, 1, inline_bytes, 4096, false,
                            config);
            rows.push_back(last);
            cells.push_back(TextTable::num(last.medianCycles, 0));
        }
        cells.push_back(placement(last));
        inline_table.addRow(cells);
    }
    inline_table.print();

    // --------------------------------------------------------------
    // 3. Arena vs heap spill (inline off isolates the arena term).
    // --------------------------------------------------------------
    std::printf("\nArena vs heap staging (2 KiB in&out, inline "
                "off):\n");
    TextTable arena_table(
        {"staging", "median cycles", "vs legacy"});
    const Row arena_on = runPoint("arena_vs_heap", "ocall_buf_tofrom",
                                  2048, 1, 0, 4096, false, config);
    const Row arena_off = runPoint("arena_vs_heap",
                                   "ocall_buf_tofrom", 2048, 1, 0, 0,
                                   false, config);
    rows.push_back(arena_on);
    rows.push_back(arena_off);
    auto vs_legacy = [&](const Row &r) {
        return TextTable::num(
                   (1.0 - r.medianCycles / legacy.medianCycles) *
                       100.0,
                   1) +
               "%";
    };
    arena_table.addRow({"slot arena",
                        TextTable::num(arena_on.medianCycles, 0),
                        vs_legacy(arena_on)});
    arena_table.addRow({"heap spill (arena off)",
                        TextTable::num(arena_off.medianCycles, 0),
                        vs_legacy(arena_off)});
    arena_table.addRow({"legacy plane",
                        TextTable::num(legacy.medianCycles, 0), "-"});
    arena_table.print();

    // --------------------------------------------------------------
    // 4. NRZ interaction on an out-only ocall (zeroing shows there).
    // --------------------------------------------------------------
    std::printf("\nNo-Redundant-Zeroing interaction (2 KiB out-only "
                "ocall, median cycles):\n");
    TextTable nrz_table({"data plane", "nrz off", "nrz on", "delta"});
    for (int fast_path : {0, 1}) {
        const Row off = runPoint("nrz", "ocall_buf_from", 2048,
                                 fast_path, 64, 4096, false, config);
        const Row on = runPoint("nrz", "ocall_buf_from", 2048,
                                fast_path, 64, 4096, true, config);
        rows.push_back(off);
        rows.push_back(on);
        nrz_table.addRow(
            {fast_path ? "fastpath" : "legacy",
             TextTable::num(off.medianCycles, 0),
             TextTable::num(on.medianCycles, 0),
             TextTable::num(off.medianCycles - on.medianCycles, 0)});
    }
    nrz_table.print();
    std::printf("\n(FastPath zeroes word-wise to begin with, so NRZ "
                "has little left to remove there.)\n");

    if (json_path)
        writeJson(json_path, rows);

    return cut >= 25.0 ? 0 : 1;
}
