/**
 * @file
 * Reproduces Table 2: API-call frequencies of the three applications
 * running (unoptimized) inside an SGX enclave, and the fraction of
 * core time spent facilitating the calls (N_calls * 8,300 / 4 GHz).
 *
 * Paper anchors:
 *   memcached: read/sendmsg/RunEnclaveFucntion at 66.5k/s each,
 *              200k total calls/s, 42% core time
 *   openVPN:   poll 87k, time 87k, getpid 13.6k, write 30k,
 *              recvfrom 30k, read 13.6k, sendto 13.6k;
 *              275k total, 57%
 *   lighttpd:  read 49k, fcntl/epoll_ctl/close/setsockopt/fxstat64
 *              25k each, 8 more at 12k each; 270k total, 56%
 */

#include <cstring>

#include "bench/app_bench.hh"
#include "support/table.hh"

using namespace hc;
using namespace hc::bench;

namespace {

void
report(const char *app, const AppRunResult &result,
       double paper_total_k, double paper_core)
{
    std::printf("\n%s (unoptimized SGX port):\n", app);
    TextTable table({"API call", "calls x1000/s"});
    // Sort by rate, descending.
    std::vector<std::pair<std::string, double>> rows(
        result.callRatesPerSec.begin(), result.callRatesPerSec.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    for (const auto &row : rows) {
        if (row.second < 500)
            continue; // the paper lists only the frequent calls
        table.addRow({row.first, TextTable::num(row.second / 1e3, 1)});
    }
    table.print();

    const double core_time = result.totalCallsPerSec * 8'300 /
                             static_cast<double>(kCoreFreqHz) * 100;
    std::printf("total calls: %.0fk/s (paper: %.0fk/s)   "
                "core time facilitating calls: %.0f%% (paper: %.0f%%)\n",
                result.totalCallsPerSec / 1e3, paper_total_k,
                core_time, paper_core);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double seconds = 0.25;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::atof(argv[i] + 10);

    AppRunConfig config;
    config.mode = port::Mode::Sgx;
    config.measureSec = seconds;

    std::printf("Table 2: API calls of non-optimized applications "
                "inside SGX enclaves\n");
    report("memcached", runKvCache(config), 200, 42);
    report("openVPN", runVpnIperf(config), 275, 57);
    report("lighttpd", runHttpd(config), 270, 56);
    return 0;
}
