/**
 * @file
 * Reproduces Figure 4: latency of an ecall + transferring a buffer
 * in / out / in&out, across buffer sizes. The paper's anchors are the
 * 2 KiB points of Table 1 row 3 (9,861 / 11,172 / 10,827 cycles) and
 * the observation that `out` is the most expensive option due to the
 * SDK's byte-wise memset.
 */

#include "bench/bench_common.hh"

using namespace hc;
using namespace hc::bench;

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 5'000);
    TestBed bed;
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;
    auto &rt = *bed.runtime;

    const std::vector<std::uint64_t> sizes = {64,   256,  1024, 2048,
                                              4096, 8192, 16384};
    struct Point {
        std::uint64_t size;
        double in, out, inout;
    };
    std::vector<Point> points;

    machine.engine().spawn("driver", 0, [&] {
        for (std::uint64_t size : sizes) {
            mem::Buffer buf(machine, mem::Domain::Untrusted, size);
            const edl::Args args = {edl::Arg::buffer(buf),
                                    edl::Arg::value(size)};
            Point p;
            p.size = size;
            p.in = measure::measureOp(
                       platform,
                       [&] { rt.ecall("ecall_buf_in", args); }, config)
                       .samples.median();
            p.out = measure::measureOp(
                        platform,
                        [&] { rt.ecall("ecall_buf_out", args); },
                        config)
                        .samples.median();
            p.inout = measure::measureOp(
                          platform,
                          [&] { rt.ecall("ecall_buf_inout", args); },
                          config)
                          .samples.median();
            points.push_back(p);
        }
    });
    machine.engine().run();

    std::printf("Figure 4: ecall + buffer transfer latency "
                "(median cycles)\n");
    TextTable table({"Buffer size", "in", "out", "in&out",
                     "paper 2KB (in/out/in&out)"});
    for (const auto &p : points) {
        table.addRow(
            {std::to_string(p.size) + " B", TextTable::cycles(p.in),
             TextTable::cycles(p.out), TextTable::cycles(p.inout),
             p.size == 2048 ? "9,861 / 11,172 / 10,827" : ""});
    }
    table.print();
    std::printf("shape checks: out > in&out > in at every size "
                "(byte-wise memset penalty): %s\n",
                [&] {
                    for (const auto &p : points)
                        if (!(p.out > p.inout && p.inout > p.in))
                            return "FAILED";
                    return "ok";
                }());
    return 0;
}
