/**
 * @file
 * Reproduces Figure 8: the overhead of memory encryption, normalized
 * encrypted/plaintext, for the memory microbenchmarks and the
 * SPEC-2006-like kernels.
 *
 * Paper anchors: L 2KB 1.55x, S 2KB 1.06x, load miss 1.30x, store
 * miss 1.20x, mcf 1.55x, libquantum 5.2x, astar mildly above 1x.
 * (libquantum's 96 MiB working set exceeds the 93 MiB EPC and pays
 * EWB/ELDU paging on every sweep.)
 */

#include "bench/bench_common.hh"
#include "workloads/spec.hh"

using namespace hc;
using namespace hc::bench;

namespace {

double
ratioOf(Cycles enc, Cycles plain)
{
    return static_cast<double>(enc) / static_cast<double>(plain);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto config = parseMeasureConfig(argc, argv, 2'000);
    TestBed bed(/*with_interrupts=*/false);
    auto &machine = *bed.machine;
    auto &platform = *bed.platform;

    struct Row {
        std::string name;
        double paper;
        double measured = 0;
    };
    std::vector<Row> rows = {
        {"L 2KB (seq read)", 1.55},   {"S 2KB (seq write)", 1.06},
        {"load miss", 1.30},          {"store miss", 1.20},
        {"mcf", 1.55},                {"libquantum", 5.2},
        {"astar", 1.15},
    };

    machine.engine().spawn("driver", 0, [&] {
        bed.runInEnclave([&] {
            // Microbenchmark ratios (as in Table 1 rows 7-10).
            mem::Buffer enc(machine, mem::Domain::Epc, 2048);
            mem::Buffer plain(machine, mem::Domain::Untrusted, 2048);
            auto median = [&](auto op, auto setup) {
                return measure::measureOracleOp(platform, op, config,
                                                setup)
                    .samples.median();
            };
            rows[0].measured =
                median([&] { enc.read(); }, [&] { enc.evict(); }) /
                median([&] { plain.read(); }, [&] { plain.evict(); });
            rows[1].measured =
                median([&] { enc.write(true); },
                       [&] { enc.evict(); }) /
                median([&] { plain.write(true); },
                       [&] { plain.evict(); });
            auto &memory = machine.memory();
            rows[2].measured =
                median([&] { memory.accessWord(enc.addr(), false); },
                       [&] { memory.evictRange(enc.addr(), 64); }) /
                median(
                    [&] { memory.accessWord(plain.addr(), false); },
                    [&] { memory.evictRange(plain.addr(), 64); });
            rows[3].measured =
                median([&] { memory.accessWord(enc.addr(), true); },
                       [&] { memory.evictRange(enc.addr(), 64); }) /
                median([&] { memory.accessWord(plain.addr(), true); },
                       [&] { memory.evictRange(plain.addr(), 64); });

            // SPEC-like kernels, encrypted vs plaintext placement.
            workloads::SpecConfig spec;
            machine.memory().evictAll();
            const Cycles mcf_enc =
                workloads::runMcf(machine, mem::Domain::Epc, spec);
            machine.memory().evictAll();
            const Cycles mcf_plain = workloads::runMcf(
                machine, mem::Domain::Untrusted, spec);
            rows[4].measured = ratioOf(mcf_enc, mcf_plain);

            machine.memory().evictAll();
            const Cycles libq_enc = workloads::runLibquantum(
                machine, mem::Domain::Epc, spec);
            machine.memory().evictAll();
            const Cycles libq_plain = workloads::runLibquantum(
                machine, mem::Domain::Untrusted, spec);
            rows[5].measured = ratioOf(libq_enc, libq_plain);

            machine.memory().evictAll();
            const Cycles astar_enc =
                workloads::runAstar(machine, mem::Domain::Epc, spec);
            machine.memory().evictAll();
            const Cycles astar_plain = workloads::runAstar(
                machine, mem::Domain::Untrusted, spec);
            rows[6].measured = ratioOf(astar_enc, astar_plain);
        });
    });
    machine.engine().run();

    std::printf("Figure 8: memory-encryption overhead "
                "(encrypted / plaintext)\n");
    TextTable table({"Benchmark", "Measured", "Paper"});
    for (const auto &row : rows) {
        table.addRow({row.name, TextTable::num(row.measured, 2) + "x",
                      TextTable::num(row.paper, 2) + "x"});
    }
    table.print();
    std::printf("EPC paging during libquantum: %llu faults, "
                "%llu evictions (working set 96 MiB > 93 MiB EPC)\n",
                static_cast<unsigned long long>(
                    bed.platform->epc().faults()),
                static_cast<unsigned long long>(
                    bed.platform->epc().evictions()));
    return 0;
}
